//! `ChaosProxy`: a deterministic network-level fault injector that sits
//! between a client (loadgen, the router) and an upstream daemon in tests.
//!
//! Same spirit as `subwarp_core::FaultPlan` / `subwarp_mem::FaultyBackend`,
//! one layer down the stack: instead of sabotaging simulations, the proxy
//! sabotages *connections* — refusing them, delaying them, truncating the
//! byte stream mid-flight, or prepending garbage — according to a plan that
//! is a pure function of `(seed, connection index)`. Two runs of a test
//! that dials the proxy in the same order therefore exercise byte-identical
//! failure schedules, which is what makes the failover paths *reproducibly*
//! testable instead of flakily so.
//!
//! ```text
//! loadgen ──▶ ChaosProxy ──▶ subwarp-router ──▶ ChaosProxy ──▶ shard
//! ```

use std::io::{Read, Write};
use std::net::{Shutdown, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// What the proxy does to one connection.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ConnFate {
    /// Pipe both directions faithfully.
    Clean,
    /// Accept, then immediately close — the peer sees a reset/EOF.
    Refuse,
    /// Sleep before piping (a slow network, not a dead one).
    Delay(Duration),
    /// Pipe only the first `n` client→upstream bytes, then cut both
    /// directions — a mid-request network partition.
    Truncate(usize),
    /// Prepend a garbage line toward the client before piping — a
    /// corrupted reply stream.
    Garbage,
}

/// Per-mille fate rates, evaluated per connection in the order refuse →
/// delay → truncate → garbage (first hit wins; the draws are independent
/// slices of one hash so the schedule is stable under rate changes to
/// later fates).
#[derive(Debug, Clone)]
pub struct ChaosPlan {
    /// Seed for the per-connection fate hash.
    pub seed: u64,
    /// ‰ of connections refused outright.
    pub refuse_per_mille: u16,
    /// ‰ of connections delayed by [`delay_ms`](ChaosPlan::delay_ms).
    pub delay_per_mille: u16,
    /// Delay applied to delayed connections.
    pub delay_ms: u64,
    /// ‰ of connections truncated after
    /// [`truncate_after`](ChaosPlan::truncate_after) bytes.
    pub truncate_per_mille: u16,
    /// Client→upstream bytes forwarded before a truncated connection cuts.
    pub truncate_after: usize,
    /// ‰ of connections that get a garbage line prepended to the reply
    /// stream.
    pub garbage_per_mille: u16,
    /// Connections with index `>= clears_after` are clean — transient
    /// chaos that heals, so tests can assert recovery.
    pub clears_after: Option<u64>,
}

impl ChaosPlan {
    /// A plan that injects nothing (pure passthrough).
    pub fn none(seed: u64) -> ChaosPlan {
        ChaosPlan {
            seed,
            refuse_per_mille: 0,
            delay_per_mille: 0,
            delay_ms: 50,
            truncate_per_mille: 0,
            truncate_after: 16,
            garbage_per_mille: 0,
            clears_after: None,
        }
    }

    /// The fate of connection `conn` (0-based accept order): a pure
    /// function of `(seed, conn)`.
    pub fn fate(&self, conn: u64) -> ConnFate {
        if let Some(clear) = self.clears_after {
            if conn >= clear {
                return ConnFate::Clean;
            }
        }
        // splitmix64 finalizer; independent 10-bit slices per fate so
        // changing one rate does not reshuffle the others' draws.
        let mut z = self
            .seed
            .wrapping_add(0x9e37_79b9_7f4a_7c15)
            .wrapping_add(conn.wrapping_mul(0xd134_2543_de82_ef95));
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^= z >> 31;
        let draw = |shift: u32| ((z >> shift) & 0x3ff) % 1000;
        if draw(0) < self.refuse_per_mille as u64 {
            ConnFate::Refuse
        } else if draw(10) < self.delay_per_mille as u64 {
            ConnFate::Delay(Duration::from_millis(self.delay_ms))
        } else if draw(20) < self.truncate_per_mille as u64 {
            ConnFate::Truncate(self.truncate_after)
        } else if draw(30) < self.garbage_per_mille as u64 {
            ConnFate::Garbage
        } else {
            ConnFate::Clean
        }
    }
}

/// A running chaos proxy; dropping it (or calling [`stop`](ChaosProxy::stop))
/// shuts the listener down.
pub struct ChaosProxy {
    addr: String,
    stop: Arc<AtomicBool>,
    accepted: Arc<AtomicU64>,
    handle: Option<std::thread::JoinHandle<()>>,
}

impl ChaosProxy {
    /// Binds an ephemeral local port and proxies every accepted connection
    /// to `upstream` under `plan`.
    pub fn spawn(upstream: &str, plan: ChaosPlan) -> std::io::Result<ChaosProxy> {
        let listener = TcpListener::bind("127.0.0.1:0")?;
        let addr = listener.local_addr()?.to_string();
        listener.set_nonblocking(true)?;
        let stop = Arc::new(AtomicBool::new(false));
        let accepted = Arc::new(AtomicU64::new(0));
        let upstream = upstream.to_owned();
        let handle = {
            let stop = Arc::clone(&stop);
            let accepted = Arc::clone(&accepted);
            std::thread::spawn(move || {
                while !stop.load(Ordering::SeqCst) {
                    match listener.accept() {
                        Ok((client, _)) => {
                            let conn = accepted.fetch_add(1, Ordering::SeqCst);
                            let fate = plan.fate(conn);
                            let upstream = upstream.clone();
                            std::thread::spawn(move || handle_conn(client, &upstream, fate));
                        }
                        Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                            std::thread::sleep(Duration::from_millis(2));
                        }
                        Err(_) => break,
                    }
                }
            })
        };
        Ok(ChaosProxy {
            addr,
            stop,
            accepted,
            handle: Some(handle),
        })
    }

    /// The proxy's listen address (`host:port`).
    pub fn addr(&self) -> &str {
        &self.addr
    }

    /// Connections accepted so far.
    pub fn accepted(&self) -> u64 {
        self.accepted.load(Ordering::SeqCst)
    }

    /// Stops the listener (idempotent; also runs on drop). In-flight piped
    /// connections finish on their own threads.
    pub fn stop(&mut self) {
        self.stop.store(true, Ordering::SeqCst);
        if let Some(h) = self.handle.take() {
            let _ = h.join();
        }
    }
}

impl Drop for ChaosProxy {
    fn drop(&mut self) {
        self.stop();
    }
}

fn handle_conn(client: TcpStream, upstream: &str, fate: ConnFate) {
    let _ = client.set_nodelay(true);
    match fate {
        ConnFate::Refuse => {
            let _ = client.shutdown(Shutdown::Both);
        }
        ConnFate::Delay(d) => {
            std::thread::sleep(d);
            pipe_both(client, upstream, usize::MAX, false);
        }
        ConnFate::Truncate(n) => pipe_both(client, upstream, n, false),
        ConnFate::Garbage => pipe_both(client, upstream, usize::MAX, true),
        ConnFate::Clean => pipe_both(client, upstream, usize::MAX, false),
    }
}

/// Pipes client⇄upstream. `c2u_cap` bounds client→upstream bytes (the
/// truncate fate); `garbage` prepends a non-JSON line toward the client.
fn pipe_both(client: TcpStream, upstream: &str, c2u_cap: usize, garbage: bool) {
    let up = match TcpStream::connect(upstream) {
        Ok(s) => s,
        Err(_) => {
            let _ = client.shutdown(Shutdown::Both);
            return;
        }
    };
    let _ = up.set_nodelay(true);
    if garbage {
        let mut c = client.try_clone().expect("clone client");
        let _ = c.write_all(b"\x7f\x7fnoise-from-the-wire\n");
    }
    let c2u = {
        let client = client.try_clone().expect("clone client");
        let up = up.try_clone().expect("clone upstream");
        std::thread::spawn(move || copy_capped(client, up, c2u_cap))
    };
    copy_capped(up, client, usize::MAX);
    let _ = c2u.join();
}

/// Copies `from` → `to` until EOF, error, or `cap` bytes, then shuts both
/// ends of the pair down so the peers observe the cut.
fn copy_capped(mut from: TcpStream, mut to: TcpStream, cap: usize) {
    let mut buf = [0u8; 4096];
    let mut sent = 0usize;
    loop {
        let want = buf.len().min(cap - sent);
        if want == 0 {
            break;
        }
        match from.read(&mut buf[..want]) {
            Ok(0) | Err(_) => break,
            Ok(n) => {
                if to.write_all(&buf[..n]).is_err() {
                    break;
                }
                sent += n;
            }
        }
    }
    let _ = from.shutdown(Shutdown::Both);
    let _ = to.shutdown(Shutdown::Both);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fates_are_deterministic_and_rate_shaped() {
        let plan = ChaosPlan {
            refuse_per_mille: 250,
            delay_per_mille: 250,
            truncate_per_mille: 250,
            garbage_per_mille: 100,
            ..ChaosPlan::none(42)
        };
        let first: Vec<ConnFate> = (0..1000).map(|c| plan.fate(c)).collect();
        let second: Vec<ConnFate> = (0..1000).map(|c| plan.fate(c)).collect();
        assert_eq!(first, second, "fate must be a pure function");
        let count = |f: fn(&ConnFate) -> bool| first.iter().filter(|x| f(x)).count();
        let refused = count(|f| matches!(f, ConnFate::Refuse));
        let clean = count(|f| matches!(f, ConnFate::Clean));
        assert!((150..350).contains(&refused), "refused={refused}");
        assert!(clean > 100, "clean={clean}");
        // A different seed reshuffles the schedule.
        let other = ChaosPlan {
            seed: 43,
            ..plan.clone()
        };
        let moved: Vec<ConnFate> = (0..1000).map(|c| other.fate(c)).collect();
        assert_ne!(first, moved);
    }

    #[test]
    fn clears_after_heals_the_network() {
        let plan = ChaosPlan {
            refuse_per_mille: 1000,
            clears_after: Some(5),
            ..ChaosPlan::none(7)
        };
        for c in 0..5 {
            assert_eq!(plan.fate(c), ConnFate::Refuse);
        }
        for c in 5..100 {
            assert_eq!(plan.fate(c), ConnFate::Clean);
        }
    }
}
