//! The daemon core: admission control, in-flight coalescing, supervised
//! batch dispatch, and the drain/shed/recover state machine.
//!
//! ## Lifecycle
//!
//! ```text
//!            SIGTERM / {"cmd":"shutdown"}          queue drained
//!  Running ───────────────────────────────▶ Draining ─────────▶ Stopped
//!    │ admit / coalesce / shed                │ shed all new work
//!    ▼                                        ▼ after `drain_grace`:
//!  dispatcher batches → run_supervised        raise the pool cancel flag
//! ```
//!
//! Every submitted job terminates in exactly one definite state: a result
//! (fresh or memoized), a labeled failure (panic / error / timeout /
//! cancelled), or an explicit shed at admission. Nothing is silently
//! dropped, and nothing — panicking simulations, hung cells, client floods
//! — kills the daemon itself.

use std::collections::{HashMap, VecDeque};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicU8, Ordering};
use std::sync::{mpsc, Arc, Condvar, Mutex};
use std::time::Duration;

use subwarp_core::{FaultPlan, RunStats, SimError, Simulator};
use subwarp_pool::{JobCause, Supervisor};

use crate::spec::JobSpec;
use crate::store::MemoStore;

/// Server tuning knobs; [`Default`] is sized for the smoke tests and the
/// `loadgen` examples.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Maximum distinct jobs waiting for dispatch; submissions beyond this
    /// are shed with a retry-after hint instead of growing memory.
    pub queue_cap: usize,
    /// Maximum outstanding (queued + in-flight) subscriptions per client.
    pub client_quota: usize,
    /// Worker threads per supervised batch.
    pub workers: usize,
    /// Per-job soft deadline; overdue jobs become labeled timeout failures.
    pub deadline: Option<Duration>,
    /// Attempts per job (> 1 enables retries of panics and errors).
    pub max_attempts: u32,
    /// Maximum jobs per supervised batch.
    pub batch_max: usize,
    /// After a drain starts, how long in-flight/queued work may keep
    /// running before the pool cancel flag is raised and the remainder is
    /// reported as cancelled.
    pub drain_grace: Duration,
    /// Deterministic fault injection (chaos mode), evaluated per job label.
    pub faults: Option<FaultPlan>,
    /// Seed for deterministic retry-backoff jitter.
    pub jitter_seed: u64,
}

impl Default for ServerConfig {
    fn default() -> ServerConfig {
        ServerConfig {
            queue_cap: 64,
            client_quota: 16,
            workers: subwarp_pool::default_jobs(),
            deadline: Some(Duration::from_secs(30)),
            max_attempts: 2,
            batch_max: 8,
            drain_grace: Duration::from_secs(30),
            faults: None,
            jitter_seed: 0x5EED,
        }
    }
}

/// Lifecycle phase (see the module diagram).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Phase {
    /// Accepting work.
    Running,
    /// Shedding new work, finishing accepted work.
    Draining,
    /// Dispatcher exited; every accepted job has been answered.
    Stopped,
}

impl Phase {
    /// Lower-case wire name.
    pub fn name(self) -> &'static str {
        match self {
            Phase::Running => "running",
            Phase::Draining => "draining",
            Phase::Stopped => "stopped",
        }
    }
}

/// Why a job failed (the wire `kind` vocabulary).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JobFailure {
    /// `panic` | `error` | `timeout` | `cancelled`.
    pub kind: &'static str,
    /// Human-readable detail.
    pub message: String,
}

/// What a completed job resolves to.
pub type JobReply = Result<(RunStats, bool), JobFailure>;

/// The outcome of [`Server::submit`].
pub enum Submitted {
    /// Served from the memo store without queueing.
    Cached(Box<RunStats>),
    /// Accepted; the receiver yields exactly one [`JobReply`].
    Queued(mpsc::Receiver<JobReply>),
    /// Rejected at admission.
    Shed {
        /// `queue-full` | `quota` | `draining`.
        reason: &'static str,
        /// Client hint: when to retry.
        retry_after_ms: u64,
    },
}

/// One pending fingerprint: the spec plus everyone waiting on it.
struct PendingJob {
    spec: JobSpec,
    subscribers: Vec<(String, mpsc::Sender<JobReply>)>,
}

#[derive(Default)]
struct QueueState {
    /// Fingerprints awaiting dispatch, oldest first (unique).
    order: VecDeque<u64>,
    /// Every pending fingerprint (queued or in-flight).
    jobs: HashMap<u64, PendingJob>,
    /// Outstanding subscriptions per client id.
    per_client: HashMap<String, usize>,
}

/// Monotonic service counters (all relaxed: they are reporting, not
/// synchronization).
#[derive(Default)]
pub struct Counters {
    /// Jobs accepted into the queue (including coalesced subscribers).
    pub accepted: AtomicU64,
    /// Submissions answered from the store without queueing.
    pub cached: AtomicU64,
    /// Submissions attached to an identical pending job.
    pub coalesced: AtomicU64,
    /// Simulations actually executed (attempt 1 only).
    pub simulated: AtomicU64,
    /// Jobs answered with a result.
    pub ok: AtomicU64,
    /// Jobs answered with a labeled failure.
    pub failed: AtomicU64,
    /// Submissions shed at admission.
    pub shed: AtomicU64,
    /// Connections closed because a read deadline fired (slowloris
    /// defense on the accept path).
    pub conn_timeouts: AtomicU64,
    /// Request lines rejected (and connections closed) for exceeding the
    /// wire line-length limit.
    pub oversized: AtomicU64,
}

struct Inner {
    cfg: ServerConfig,
    store: MemoStore,
    phase: AtomicU8,
    cancel: Arc<AtomicBool>,
    queue: Mutex<QueueState>,
    queue_cv: Condvar,
    counters: Counters,
}

/// The in-process daemon: submit jobs, read stats, drain, join. Transport
/// (TCP/unix socket NDJSON) lives in [`crate::wire`]; tests drive this
/// struct directly.
pub struct Server {
    inner: Arc<Inner>,
    dispatcher: Mutex<Option<std::thread::JoinHandle<()>>>,
}

impl Server {
    /// Starts the dispatcher and returns the running server.
    pub fn start(cfg: ServerConfig, store: MemoStore) -> Arc<Server> {
        let inner = Arc::new(Inner {
            cfg,
            store,
            phase: AtomicU8::new(0),
            cancel: Arc::new(AtomicBool::new(false)),
            queue: Mutex::new(QueueState::default()),
            queue_cv: Condvar::new(),
            counters: Counters::default(),
        });
        let dispatcher = std::thread::spawn({
            let inner = Arc::clone(&inner);
            move || dispatch_loop(&inner)
        });
        Arc::new(Server {
            inner,
            dispatcher: Mutex::new(Some(dispatcher)),
        })
    }

    /// Current lifecycle phase.
    pub fn phase(&self) -> Phase {
        match self.inner.phase.load(Ordering::SeqCst) {
            0 => Phase::Running,
            1 => Phase::Draining,
            _ => Phase::Stopped,
        }
    }

    /// The service counters.
    pub fn counters(&self) -> &Counters {
        &self.inner.counters
    }

    /// The memo store (hit/miss counters, size).
    pub fn store(&self) -> &MemoStore {
        &self.inner.store
    }

    /// Accounts one connection closed by a read deadline (see
    /// [`crate::wire::serve_connection`]).
    pub fn note_conn_timeout(&self) {
        self.inner
            .counters
            .conn_timeouts
            .fetch_add(1, Ordering::Relaxed);
    }

    /// Accounts one oversized request line.
    pub fn note_oversized(&self) {
        self.inner
            .counters
            .oversized
            .fetch_add(1, Ordering::Relaxed);
    }

    /// Jobs currently queued or in flight.
    pub fn pending(&self) -> usize {
        self.inner
            .queue
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .jobs
            .len()
    }

    /// Submits a job for `client`. Never blocks on simulation: the caller
    /// gets a cached result, a receiver, or an explicit shed.
    pub fn submit(&self, client: &str, spec: JobSpec) -> Submitted {
        let inner = &self.inner;
        if self.phase() != Phase::Running {
            inner.counters.shed.fetch_add(1, Ordering::Relaxed);
            return Submitted::Shed {
                reason: "draining",
                retry_after_ms: 0,
            };
        }
        if let Some(stats) = inner.store.lookup(spec.fp) {
            inner.counters.cached.fetch_add(1, Ordering::Relaxed);
            return Submitted::Cached(Box::new(stats));
        }
        let mut q = inner.queue.lock().unwrap_or_else(|e| e.into_inner());
        // Per-client quota covers queued and coalesced subscriptions alike:
        // a client cannot flood the service by subscribing to one hot job
        // any more than by submitting distinct ones.
        let outstanding = q.per_client.get(client).copied().unwrap_or(0);
        if outstanding >= inner.cfg.client_quota {
            drop(q);
            inner.counters.shed.fetch_add(1, Ordering::Relaxed);
            return Submitted::Shed {
                reason: "quota",
                retry_after_ms: self.retry_after_ms(),
            };
        }
        let (tx, rx) = mpsc::channel();
        if let Some(job) = q.jobs.get_mut(&spec.fp) {
            // Identical job already pending: piggyback instead of queueing
            // a duplicate simulation.
            job.subscribers.push((client.to_owned(), tx));
            *q.per_client.entry(client.to_owned()).or_insert(0) += 1;
            drop(q);
            inner.counters.coalesced.fetch_add(1, Ordering::Relaxed);
            inner.counters.accepted.fetch_add(1, Ordering::Relaxed);
            return Submitted::Queued(rx);
        }
        if q.order.len() >= inner.cfg.queue_cap {
            drop(q);
            inner.counters.shed.fetch_add(1, Ordering::Relaxed);
            return Submitted::Shed {
                reason: "queue-full",
                retry_after_ms: self.retry_after_ms(),
            };
        }
        let fp = spec.fp;
        q.jobs.insert(
            fp,
            PendingJob {
                spec,
                subscribers: vec![(client.to_owned(), tx)],
            },
        );
        q.order.push_back(fp);
        *q.per_client.entry(client.to_owned()).or_insert(0) += 1;
        drop(q);
        inner.counters.accepted.fetch_add(1, Ordering::Relaxed);
        inner.queue_cv.notify_all();
        Submitted::Queued(rx)
    }

    /// A load-shedding hint: scale with queue depth so a flooded server
    /// pushes clients further out instead of inviting an immediate retry
    /// storm.
    fn retry_after_ms(&self) -> u64 {
        let depth = self
            .inner
            .queue
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .order
            .len() as u64;
        100 + 25 * depth
    }

    /// Begins a graceful drain: stop admitting, finish (and journal)
    /// accepted work, then stop. Idempotent. After
    /// [`drain_grace`](ServerConfig::drain_grace), still-running work is
    /// cancelled so a hung simulation cannot wedge shutdown forever.
    pub fn drain(&self) {
        let was = self
            .inner
            .phase
            .compare_exchange(0, 1, Ordering::SeqCst, Ordering::SeqCst);
        if was.is_ok() {
            self.inner.queue_cv.notify_all();
            let inner = Arc::clone(&self.inner);
            std::thread::spawn(move || {
                let grace = inner.cfg.drain_grace;
                let step = Duration::from_millis(25);
                let mut waited = Duration::ZERO;
                while waited < grace {
                    if inner.phase.load(Ordering::SeqCst) == 2 {
                        return; // drained cleanly within the grace window
                    }
                    std::thread::sleep(step);
                    waited += step;
                }
                inner.cancel.store(true, Ordering::SeqCst);
                inner.queue_cv.notify_all();
            });
        }
    }

    /// Waits for the dispatcher to finish (call after [`drain`]).
    pub fn join(&self) {
        let handle = self
            .dispatcher
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .take();
        if let Some(h) = handle {
            let _ = h.join();
        }
    }

    /// One-line stats snapshot in wire form.
    pub fn stats_json(&self) -> String {
        let c = &self.inner.counters;
        let (hits, misses) = self.inner.store.counters();
        format!(
            "{{\"ok\":true,\"phase\":\"{}\",\"accepted\":{},\"cached\":{},\"coalesced\":{},\
             \"simulated\":{},\"completed_ok\":{},\"failed\":{},\"shed\":{},\
             \"conn_timeouts\":{},\"oversized\":{},\
             \"store_hits\":{hits},\"store_misses\":{misses},\"store_len\":{},\
             \"store_bytes\":{},\"compactions\":{},\
             \"restored\":{},\"pending\":{}}}",
            self.phase().name(),
            c.accepted.load(Ordering::Relaxed),
            c.cached.load(Ordering::Relaxed),
            c.coalesced.load(Ordering::Relaxed),
            c.simulated.load(Ordering::Relaxed),
            c.ok.load(Ordering::Relaxed),
            c.failed.load(Ordering::Relaxed),
            c.shed.load(Ordering::Relaxed),
            c.conn_timeouts.load(Ordering::Relaxed),
            c.oversized.load(Ordering::Relaxed),
            self.inner.store.len(),
            self.inner.store.disk_bytes(),
            self.inner.store.compactions(),
            self.inner.store.restored(),
            self.pending(),
        )
    }
}

/// Claims up to `batch_max` queued jobs, runs them under supervision,
/// records results, and answers every subscriber. Exits only when draining
/// and the queue is empty.
fn dispatch_loop(inner: &Arc<Inner>) {
    loop {
        let batch: Vec<JobSpec> = {
            let mut q = inner.queue.lock().unwrap_or_else(|e| e.into_inner());
            loop {
                if !q.order.is_empty() {
                    break;
                }
                if inner.phase.load(Ordering::SeqCst) != 0 {
                    // Draining with an empty queue: every accepted job has
                    // been answered. Stop.
                    inner.phase.store(2, Ordering::SeqCst);
                    return;
                }
                let (guard, _) = inner
                    .queue_cv
                    .wait_timeout(q, Duration::from_millis(100))
                    .unwrap_or_else(|e| e.into_inner());
                q = guard;
            }
            let n = q.order.len().min(inner.cfg.batch_max.max(1));
            (0..n)
                .filter_map(|_| {
                    let fp = q.order.pop_front()?;
                    q.jobs.get(&fp).map(|j| j.spec.clone())
                })
                .collect()
        };
        if batch.is_empty() {
            continue;
        }

        let labels: Vec<String> = batch.iter().map(|s| s.label.clone()).collect();
        let sup = Supervisor {
            workers: inner.cfg.workers.max(1),
            deadline: inner.cfg.deadline,
            max_attempts: inner.cfg.max_attempts.max(1),
            retry_panics: inner.cfg.max_attempts > 1,
            retry_errors: inner.cfg.max_attempts > 1,
            jitter_seed: inner.cfg.jitter_seed,
            cancel: Some(Arc::clone(&inner.cancel)),
            ..Supervisor::default()
        };
        let specs = Arc::new(batch);
        let run_specs = Arc::clone(&specs);
        let run_inner = Arc::clone(inner);
        let outcomes = subwarp_pool::run_supervised(&sup, &labels, move |k, attempt| {
            let spec = &run_specs[k];
            // A result that landed in the store between admission and
            // dispatch (e.g. recorded by a previous batch before this
            // duplicate was admitted) short-circuits the simulation.
            if let Some(stats) = run_inner.store.peek(spec.fp) {
                return Ok((stats, true));
            }
            if let Some(plan) = &run_inner.cfg.faults {
                plan.sabotage(&spec.label, attempt)?;
            }
            if attempt == 1 {
                run_inner.counters.simulated.fetch_add(1, Ordering::Relaxed);
            }
            let stats = Simulator::new(spec.sm.clone(), spec.si).run(&spec.wl)?;
            // Journal (flushed) before the client hears about it: a crash
            // after this point re-serves the result instead of re-running.
            run_inner.store.record(spec.fp, &spec.label, &stats);
            Ok::<(RunStats, bool), SimError>((stats, false))
        });

        for (k, outcome) in outcomes.into_iter().enumerate() {
            let fp = specs[k].fp;
            let reply: JobReply = match outcome {
                Ok((stats, cached)) => Ok((stats, cached)),
                Err(e) => {
                    let kind = match &e.cause {
                        JobCause::Panic(_) => "panic",
                        JobCause::Err(_) => "error",
                        JobCause::Timeout { .. } => "timeout",
                        JobCause::Cancelled => "cancelled",
                    };
                    Err(JobFailure {
                        kind,
                        message: e.to_string(),
                    })
                }
            };
            let job = {
                let mut q = inner.queue.lock().unwrap_or_else(|e| e.into_inner());
                let job = q.jobs.remove(&fp);
                if let Some(job) = &job {
                    for (client, _) in &job.subscribers {
                        if let Some(n) = q.per_client.get_mut(client) {
                            *n = n.saturating_sub(1);
                        }
                    }
                }
                job
            };
            if let Some(job) = job {
                let n = job.subscribers.len() as u64;
                match &reply {
                    Ok(_) => inner.counters.ok.fetch_add(n, Ordering::Relaxed),
                    Err(_) => inner.counters.failed.fetch_add(n, Ordering::Relaxed),
                };
                for (_, tx) in job.subscribers {
                    // A subscriber that hung up (client disconnect) is fine.
                    let _ = tx.send(reply.clone());
                }
            }
        }
    }
}
