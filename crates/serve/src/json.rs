//! A minimal, dependency-free JSON reader for the NDJSON wire protocol.
//!
//! The grammar is full JSON, but the representation is tuned for this
//! protocol: integers that fit `i64` stay lossless (`Value::Int`) so
//! 64-bit cycle counts survive a round trip, and objects preserve a flat
//! key → value list (duplicate keys: last wins on lookup, matching the
//! journal codec's convention).

use std::fmt;

/// A parsed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// A number without fraction/exponent that fits `i64` — lossless.
    Int(i64),
    /// Any other number.
    Float(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Value>),
    /// An object, in source order.
    Obj(Vec<(String, Value)>),
}

impl Value {
    /// Looks up a key in an object (last occurrence wins). `None` for
    /// non-objects and absent keys.
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Obj(pairs) => pairs.iter().rev().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The value as a string slice, if it is one.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The value as a `u64`, if it is a non-negative integer.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Value::Int(i) if *i >= 0 => Some(*i as u64),
            _ => None,
        }
    }

    /// The value as an `i64` integer.
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Value::Int(i) => Some(*i),
            _ => None,
        }
    }

    /// The value as a bool.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The value as an array slice.
    pub fn as_arr(&self) -> Option<&[Value]> {
        match self {
            Value::Arr(v) => Some(v),
            _ => None,
        }
    }

    /// Convenience: `get(key)` then [`as_str`](Value::as_str).
    pub fn str_field(&self, key: &str) -> Option<&str> {
        self.get(key).and_then(Value::as_str)
    }

    /// Convenience: `get(key)` then [`as_u64`](Value::as_u64).
    pub fn u64_field(&self, key: &str) -> Option<u64> {
        self.get(key).and_then(Value::as_u64)
    }

    /// Convenience: `get(key)` then [`as_bool`](Value::as_bool).
    pub fn bool_field(&self, key: &str) -> Option<bool> {
        self.get(key).and_then(Value::as_bool)
    }
}

/// Where and why a parse failed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// Byte offset of the failure.
    pub at: usize,
    /// What went wrong.
    pub msg: String,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid JSON at byte {}: {}", self.at, self.msg)
    }
}

impl std::error::Error for ParseError {}

/// Parses one complete JSON value; trailing non-whitespace is an error
/// (NDJSON lines carry exactly one value).
pub fn parse(input: &str) -> Result<Value, ParseError> {
    let mut p = Parser {
        bytes: input.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.value(0)?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.err("trailing characters after value"));
    }
    Ok(v)
}

const MAX_DEPTH: usize = 64;

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, msg: &str) -> ParseError {
        ParseError {
            at: self.pos,
            msg: msg.to_owned(),
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn eat(&mut self, b: u8) -> Result<(), ParseError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected `{}`", b as char)))
        }
    }

    fn value(&mut self, depth: usize) -> Result<Value, ParseError> {
        if depth > MAX_DEPTH {
            return Err(self.err("nesting too deep"));
        }
        match self.peek() {
            Some(b'{') => self.object(depth),
            Some(b'[') => self.array(depth),
            Some(b'"') => Ok(Value::Str(self.string()?)),
            Some(b't') => self.literal("true", Value::Bool(true)),
            Some(b'f') => self.literal("false", Value::Bool(false)),
            Some(b'n') => self.literal("null", Value::Null),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            Some(_) => Err(self.err("unexpected character")),
            None => Err(self.err("unexpected end of input")),
        }
    }

    fn literal(&mut self, word: &str, v: Value) -> Result<Value, ParseError> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(v)
        } else {
            Err(self.err(&format!("expected `{word}`")))
        }
    }

    fn object(&mut self, depth: usize) -> Result<Value, ParseError> {
        self.eat(b'{')?;
        let mut pairs = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Obj(pairs));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.eat(b':')?;
            self.skip_ws();
            let v = self.value(depth + 1)?;
            pairs.push((key, v));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Obj(pairs));
                }
                _ => return Err(self.err("expected `,` or `}` in object")),
            }
        }
    }

    fn array(&mut self, depth: usize) -> Result<Value, ParseError> {
        self.eat(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value(depth + 1)?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Arr(items));
                }
                _ => return Err(self.err("expected `,` or `]` in array")),
            }
        }
    }

    fn string(&mut self) -> Result<String, ParseError> {
        self.eat(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let esc = self.peek().ok_or_else(|| self.err("bad escape"))?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'u' => {
                            let cp = self.hex4()?;
                            // Surrogate pair handling for completeness.
                            let c = if (0xD800..0xDC00).contains(&cp) {
                                if self.bytes[self.pos..].starts_with(b"\\u") {
                                    self.pos += 2;
                                    let lo = self.hex4()?;
                                    let combined = 0x10000
                                        + ((cp - 0xD800) << 10)
                                        + (lo.wrapping_sub(0xDC00) & 0x3FF);
                                    char::from_u32(combined)
                                } else {
                                    None
                                }
                            } else {
                                char::from_u32(cp)
                            };
                            out.push(c.ok_or_else(|| self.err("bad \\u escape"))?);
                        }
                        _ => return Err(self.err("unknown escape")),
                    }
                }
                Some(c) if c < 0x20 => return Err(self.err("control character in string")),
                Some(_) => {
                    // Copy a full UTF-8 scalar (input is a &str, so the
                    // byte stream is valid UTF-8 by construction).
                    let start = self.pos;
                    let mut end = start + 1;
                    while end < self.bytes.len() && (self.bytes[end] & 0xC0) == 0x80 {
                        end += 1;
                    }
                    out.push_str(std::str::from_utf8(&self.bytes[start..end]).unwrap());
                    self.pos = end;
                }
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, ParseError> {
        if self.pos + 4 > self.bytes.len() {
            return Err(self.err("truncated \\u escape"));
        }
        let s = std::str::from_utf8(&self.bytes[self.pos..self.pos + 4])
            .map_err(|_| self.err("bad \\u escape"))?;
        let v = u32::from_str_radix(s, 16).map_err(|_| self.err("bad \\u escape"))?;
        self.pos += 4;
        Ok(v)
    }

    fn number(&mut self) -> Result<Value, ParseError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
            self.pos += 1;
        }
        let mut is_float = false;
        if self.peek() == Some(b'.') {
            is_float = true;
            self.pos += 1;
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            is_float = true;
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).unwrap();
        if !is_float {
            if let Ok(i) = text.parse::<i64>() {
                return Ok(Value::Int(i));
            }
        }
        text.parse::<f64>()
            .map(Value::Float)
            .map_err(|_| self.err("bad number"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_scalars_and_containers() {
        assert_eq!(parse("null").unwrap(), Value::Null);
        assert_eq!(parse("true").unwrap(), Value::Bool(true));
        assert_eq!(parse("-42").unwrap(), Value::Int(-42));
        assert_eq!(parse("1.5").unwrap(), Value::Float(1.5));
        assert_eq!(
            parse(r#"[1, "two", null]"#).unwrap(),
            Value::Arr(vec![Value::Int(1), Value::Str("two".into()), Value::Null])
        );
        let obj = parse(r#"{"cmd":"run","latency":600,"si":"both"}"#).unwrap();
        assert_eq!(obj.str_field("cmd"), Some("run"));
        assert_eq!(obj.u64_field("latency"), Some(600));
        assert_eq!(obj.str_field("si"), Some("both"));
        assert_eq!(obj.get("missing"), None);
    }

    #[test]
    fn large_integers_are_lossless() {
        let v = parse("9007199254740993").unwrap(); // 2^53 + 1: breaks f64
        assert_eq!(v.as_u64(), Some(9007199254740993));
    }

    #[test]
    fn string_escapes_round_trip() {
        let v = parse(r#""a\"b\\c\ndAémoji✓""#).unwrap();
        assert_eq!(v.as_str(), Some("a\"b\\c\ndAémoji✓"));
    }

    #[test]
    fn rejects_malformed_input() {
        for bad in [
            "", "{", "{\"a\":}", "[1,]", "tru", "\"open", "1 2", "{'a':1}",
        ] {
            assert!(parse(bad).is_err(), "{bad:?} must fail");
        }
    }

    #[test]
    fn rejects_pathological_nesting() {
        let deep = "[".repeat(1000) + &"]".repeat(1000);
        assert!(parse(&deep).is_err());
    }
}
