//! Job specifications: the wire form of "simulate this workload under this
//! configuration", resolved to simulator inputs and a content fingerprint.
//!
//! The knob vocabulary deliberately mirrors the `simulate` binary so a
//! command line translates 1:1 into a job object:
//!
//! ```json
//! {"cmd":"run","workload":"trace:AV1","si":"both","policy":"half",
//!  "latency":600,"slots":8,"sms":1,"shared_mem":true,"subwarps":32,
//!  "order":"ft","small_icache":false,"mem":"fixed"}
//! ```
//!
//! Two different requests that resolve to the same workload + configuration
//! produce the same [`cell_fingerprint`], which is what lets the memo store
//! and in-flight coalescing collapse duplicate work.

use std::collections::HashMap;
use std::sync::{Arc, Mutex, OnceLock};

use subwarp_core::{
    DivergeOrder, HierarchyConfig, MemBackendConfig, SelectPolicy, SiConfig, SmConfig, Workload,
};
use subwarp_sweep::{cell_fingerprint, workload_hash};
use subwarp_workloads::{built_suite, figure9_workload, microbenchmark_with, MicroConfig};

use crate::json::Value;

/// A fully resolved simulation job: shared workload, validated configs, a
/// canonical label, and the content fingerprint the memo store keys on.
#[derive(Clone)]
pub struct JobSpec {
    /// Canonical `"<workload>/<config>"` label (journal + log vocabulary).
    pub label: String,
    /// Content fingerprint over workload + configs + label.
    pub fp: u64,
    /// The workload, shared via the process-wide cache.
    pub wl: Arc<Workload>,
    /// SM configuration.
    pub sm: SmConfig,
    /// Subwarp-interleaving configuration.
    pub si: SiConfig,
}

/// Cache value: the shared workload plus its precomputed content hash.
type CachedWorkload = (Arc<Workload>, u64);

/// Process-wide workload cache: building a trace means re-tracing rays
/// through a BVH (milliseconds), so each distinct workload key is built
/// once and shared across every job and worker thread.
fn workload_cache() -> &'static Mutex<HashMap<String, CachedWorkload>> {
    static CACHE: OnceLock<Mutex<HashMap<String, CachedWorkload>>> = OnceLock::new();
    CACHE.get_or_init(|| Mutex::new(HashMap::new()))
}

/// Resolves a workload key (`toy`, `micro:SIZE[@ITERS]`, `trace:NAME`, or
/// `file:PATH` naming a serialized `subwarp-trace` file) to a shared
/// workload and its precomputed content hash.
fn resolve_workload(key: &str) -> Result<(Arc<Workload>, u64), String> {
    if let Some(path) = key.strip_prefix("file:") {
        // File-backed workloads are keyed by trace *content*, not path:
        // the fingerprint folds in the format version and every byte, so
        // an edited file is a new identity (the memo store stays sound)
        // while a re-request of unchanged bytes shares the decoded build.
        let bytes =
            std::fs::read(path).map_err(|e| format!("cannot read trace file `{path}`: {e}"))?;
        let hash = subwarp_trace::trace_fingerprint(&bytes);
        let cache_key = format!("file-fp:{hash:#018x}");
        if let Some(hit) = workload_cache()
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .get(&cache_key)
        {
            return Ok(hit.clone());
        }
        let wl = Arc::new(subwarp_trace::decode_workload(&bytes).map_err(|e| e.to_string())?);
        workload_cache()
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .insert(cache_key, (Arc::clone(&wl), hash));
        return Ok((wl, hash));
    }
    if let Some(hit) = workload_cache()
        .lock()
        .unwrap_or_else(|e| e.into_inner())
        .get(key)
    {
        return Ok(hit.clone());
    }
    let wl: Arc<Workload> = if key == "toy" {
        Arc::new(figure9_workload())
    } else if let Some(rest) = key.strip_prefix("micro:") {
        let (size, iters) = match rest.split_once('@') {
            Some((s, i)) => (s, i),
            None => (rest, "4"),
        };
        let subwarp_size: usize = size
            .parse()
            .map_err(|_| format!("bad micro subwarp size `{size}`"))?;
        let iterations: u32 = iters
            .parse()
            .map_err(|_| format!("bad micro iteration count `{iters}`"))?;
        if !(1..=32).contains(&subwarp_size) || !subwarp_size.is_power_of_two() {
            return Err(format!(
                "micro subwarp size must be a power of two in 1..=32, got {subwarp_size}"
            ));
        }
        if iterations == 0 || iterations > 64 {
            return Err(format!(
                "micro iterations must be in 1..=64, got {iterations}"
            ));
        }
        Arc::new(microbenchmark_with(MicroConfig {
            subwarp_size,
            iterations,
            ..MicroConfig::default()
        }))
    } else if let Some(name) = key.strip_prefix("trace:") {
        // The Table II suite is already built once per process; share it.
        let hit = built_suite()
            .iter()
            .find(|(t, _)| t.name.eq_ignore_ascii_case(name));
        match hit {
            Some((_, wl)) => Arc::clone(wl),
            None => return Err(format!("unknown trace `{name}`")),
        }
    } else {
        return Err(format!(
            "unknown workload `{key}` (expected toy, micro:SIZE, trace:NAME, or file:PATH)"
        ));
    };
    let hash = workload_hash(&wl);
    workload_cache()
        .lock()
        .unwrap_or_else(|e| e.into_inner())
        .insert(key.to_owned(), (Arc::clone(&wl), hash));
    Ok((wl, hash))
}

fn parse_order(s: &str) -> Result<DivergeOrder, String> {
    Ok(match s {
        "ft" => DivergeOrder::FallthroughFirst,
        "taken" => DivergeOrder::TakenFirst,
        "random" => DivergeOrder::Random,
        "hinted" => DivergeOrder::Hinted,
        other => return Err(format!("bad order `{other}` (ft|taken|random|hinted)")),
    })
}

fn parse_policy(s: &str) -> Result<SelectPolicy, String> {
    Ok(match s {
        "any" => SelectPolicy::AnyStalled,
        "half" => SelectPolicy::HalfStalled,
        "all" => SelectPolicy::AllStalled,
        other => return Err(format!("bad policy `{other}` (any|half|all)")),
    })
}

impl JobSpec {
    /// Builds a job from a parsed request object. Every knob is optional
    /// except `workload`; defaults match the `simulate` binary. Rejects
    /// unknown workloads, out-of-range knobs, and configurations that fail
    /// `SmConfig::validate`/`SiConfig::validate` — a daemon must bounce bad
    /// requests at the door, not panic a worker on them.
    pub fn from_request(req: &Value) -> Result<JobSpec, String> {
        let wl_key = req
            .str_field("workload")
            .ok_or_else(|| "missing `workload` field".to_owned())?;
        let (wl, whash) = resolve_workload(wl_key)?;

        let mut sm = SmConfig::turing_like();
        if let Some(v) = req.get("latency") {
            sm.miss_latency = v.as_u64().ok_or("bad `latency`")?;
        }
        if let Some(v) = req.get("slots") {
            sm.warp_slots_per_pb = v.as_u64().ok_or("bad `slots`")? as usize;
        }
        if let Some(v) = req.get("sms") {
            sm.n_sms = v.as_u64().ok_or("bad `sms`")? as usize;
        }
        if let Some(v) = req.get("shared_mem") {
            sm.shared_partitions = v.as_bool().ok_or("bad `shared_mem`")?;
        }
        if let Some(v) = req.get("order") {
            sm.diverge_order = parse_order(v.as_str().ok_or("bad `order`")?)?;
        }
        if req.bool_field("small_icache").unwrap_or(false) {
            sm = sm.with_small_icaches();
        }
        if let Some(v) = req.get("mem") {
            sm.mem_backend = match v.as_str().ok_or("bad `mem`")? {
                "fixed" => MemBackendConfig::Fixed,
                "hier" => MemBackendConfig::Hierarchical(HierarchyConfig::turing_like()),
                other => return Err(format!("bad mem backend `{other}` (fixed|hier)")),
            };
        }

        let policy = match req.get("policy") {
            Some(v) => parse_policy(v.as_str().ok_or("bad `policy`")?)?,
            None => SelectPolicy::HalfStalled,
        };
        let si_kind = req.str_field("si").unwrap_or("off");
        let mut si = match si_kind {
            "off" => SiConfig::disabled(),
            "sos" => SiConfig::sos(policy),
            "both" => SiConfig::both(policy),
            "dws" => {
                let mut si = SiConfig::dws_like();
                si.policy = policy;
                si
            }
            other => return Err(format!("bad si mode `{other}` (off|sos|both|dws)")),
        };
        if let Some(v) = req.get("subwarps") {
            si = si.with_max_subwarps(v.as_u64().ok_or("bad `subwarps`")? as usize);
        }

        sm.validate()?;
        si.validate()?;

        // Canonical label: the workload key plus the SI label and any
        // non-default SM knobs, so journal lines and holes read like the
        // figures' cell names.
        let mut cfg = si.label();
        if sm.miss_latency != SmConfig::turing_like().miss_latency {
            cfg.push_str(&format!(",lat{}", sm.miss_latency));
        }
        let label = format!("{wl_key}/{cfg}");
        let fp = cell_fingerprint(&label, whash, &sm, &si);
        Ok(JobSpec {
            label,
            fp,
            wl,
            sm,
            si,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::json::parse;

    fn spec(line: &str) -> Result<JobSpec, String> {
        JobSpec::from_request(&parse(line).unwrap())
    }

    #[test]
    fn chip_shape_changes_the_fingerprint() {
        // Memoization soundness: SM count and partition sharing are part
        // of the simulated machine, so they must key the memo store.
        let one = spec(r#"{"workload":"toy","mem":"hier"}"#).unwrap();
        let four = spec(r#"{"workload":"toy","mem":"hier","sms":4}"#).unwrap();
        let four_private =
            spec(r#"{"workload":"toy","mem":"hier","sms":4,"shared_mem":false}"#).unwrap();
        assert_ne!(one.fp, four.fp);
        assert_ne!(four.fp, four_private.fp);
        assert_ne!(one.fp, four_private.fp);
    }

    #[test]
    fn defaults_mirror_simulate_binary() {
        let s = spec(r#"{"workload":"toy"}"#).unwrap();
        assert!(!s.si.enabled);
        assert_eq!(s.sm.miss_latency, SmConfig::turing_like().miss_latency);
        assert_eq!(s.label, "toy/baseline");
    }

    #[test]
    fn same_request_same_fingerprint_different_knob_different_fingerprint() {
        let a = spec(r#"{"workload":"toy","si":"both"}"#).unwrap();
        let b = spec(r#"{"workload":"toy","si":"both"}"#).unwrap();
        let c = spec(r#"{"workload":"toy","si":"both","latency":900}"#).unwrap();
        let d = spec(r#"{"workload":"toy","si":"sos"}"#).unwrap();
        assert_eq!(a.fp, b.fp);
        assert_ne!(a.fp, c.fp);
        assert_ne!(a.fp, d.fp);
    }

    #[test]
    fn workloads_are_cached_and_shared() {
        let a = spec(r#"{"workload":"micro:8"}"#).unwrap();
        let b = spec(r#"{"workload":"micro:8","si":"both"}"#).unwrap();
        assert!(Arc::ptr_eq(&a.wl, &b.wl), "cache must share the build");
        let c = spec(r#"{"workload":"micro:8@2"}"#).unwrap();
        assert!(
            !Arc::ptr_eq(&a.wl, &c.wl),
            "different iters, different build"
        );
    }

    #[test]
    fn file_keys_resolve_by_trace_content() {
        let wl = figure9_workload();
        let bytes = subwarp_trace::encode_workload(&wl);
        let path = std::env::temp_dir().join("subwarp-serve-spec-file-key.swt");
        std::fs::write(&path, &bytes).unwrap();
        let req = format!(r#"{{"workload":"file:{}"}}"#, path.display());
        let s = spec(&req).unwrap();
        assert_eq!(s.wl.name, wl.name);
        // The fingerprint is keyed by trace content, so an identical
        // in-memory workload served under the `toy` key shares no cell
        // fingerprint with the file-backed one (different identities)...
        let toy = spec(r#"{"workload":"toy"}"#).unwrap();
        assert_ne!(s.fp, toy.fp);
        // ...while re-requesting the same file shares the decoded build.
        let again = spec(&req).unwrap();
        assert!(Arc::ptr_eq(&s.wl, &again.wl));
        std::fs::remove_file(&path).ok();

        let missing = spec(r#"{"workload":"file:/nonexistent/nope.swt"}"#);
        let err = missing.err().expect("missing file must be rejected");
        assert!(err.contains("cannot read trace file"));
    }

    #[test]
    fn rejects_bad_requests_cleanly() {
        for bad in [
            r#"{"si":"both"}"#,
            r#"{"workload":"nope"}"#,
            r#"{"workload":"trace:NOPE"}"#,
            r#"{"workload":"micro:3"}"#,
            r#"{"workload":"micro:8@999"}"#,
            r#"{"workload":"toy","si":"warp"}"#,
            r#"{"workload":"toy","order":"sideways"}"#,
            r#"{"workload":"toy","slots":0}"#,
        ] {
            assert!(spec(bad).is_err(), "{bad} must be rejected");
        }
    }
}
