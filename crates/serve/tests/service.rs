//! End-to-end tests for the job daemon: dedupe over the wire, in-flight
//! coalescing, admission control, graceful drain, chaos survival, and
//! journaled restart.
//!
//! TCP tests run a real listener on an ephemeral port with the same
//! connection handler as the `subwarp-serve` binary; the rest drive the
//! [`Server`] API directly so timing-sensitive assertions (coalescing,
//! shedding) can use deterministic injected delays instead of sleeps.

use std::io::BufReader;
use std::net::{TcpListener, TcpStream};
use std::sync::mpsc::Receiver;
use std::sync::Arc;
use std::time::Duration;

use subwarp_core::{FaultKind, FaultPlan, RunStats};
use subwarp_serve::json::parse;
use subwarp_serve::server::JobReply;
use subwarp_serve::wire::{serve_connection, WireLimits};
use subwarp_serve::{Client, JobSpec, MemoStore, Phase, Server, ServerConfig, Submitted};

/// A small config sized for single-core CI: tiny batches, generous
/// deadline, no retries unless a test opts in.
fn test_config() -> ServerConfig {
    ServerConfig {
        queue_cap: 16,
        client_quota: 8,
        workers: 2,
        deadline: Some(Duration::from_secs(30)),
        max_attempts: 1,
        batch_max: 4,
        drain_grace: Duration::from_secs(30),
        faults: None,
        jitter_seed: 7,
    }
}

fn spec(line: &str) -> JobSpec {
    JobSpec::from_request(&parse(line).unwrap()).unwrap()
}

/// Serves `server` on an ephemeral TCP port until it leaves `Running`.
fn spawn_listener(server: Arc<Server>) -> (String, std::thread::JoinHandle<()>) {
    let listener = TcpListener::bind("127.0.0.1:0").unwrap();
    let addr = listener.local_addr().unwrap().to_string();
    let handle = std::thread::spawn(move || {
        listener.set_nonblocking(true).unwrap();
        while server.phase() == Phase::Running {
            match listener.accept() {
                Ok((stream, peer)) => {
                    let server = Arc::clone(&server);
                    std::thread::spawn(move || {
                        let reader = BufReader::new(stream.try_clone().unwrap());
                        let _ = serve_connection(
                            &server,
                            &peer.to_string(),
                            reader,
                            &stream,
                            WireLimits::default(),
                        );
                    });
                }
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                    std::thread::sleep(Duration::from_millis(5));
                }
                Err(_) => break,
            }
        }
    });
    (addr, handle)
}

/// Extracts the exact `"u":[...]` / `"ch":[...]` codec text from a raw
/// reply line — the byte-identity the restart guarantee is stated in.
fn codec_text(raw: &str) -> String {
    let u = raw.find("\"u\":[").expect("reply has u array");
    let end = raw[u..].find(']').unwrap() + u;
    let ch = raw.find("\"ch\":[").expect("reply has ch array");
    let chend = raw[ch..].find(']').unwrap() + ch;
    format!("{} {}", &raw[u..=end], &raw[ch..=chend])
}

fn recv_ok(rx: &Receiver<JobReply>) -> (RunStats, bool) {
    rx.recv_timeout(Duration::from_secs(120))
        .expect("job must reach a definite state")
        .expect("job must succeed")
}

#[test]
fn tcp_resubmit_hits_the_memo_store_byte_identically() {
    let server = Server::start(test_config(), MemoStore::in_memory());
    let (addr, listener) = spawn_listener(Arc::clone(&server));

    let mut client = Client::connect(&addr).unwrap();
    let pong = client.request(r#"{"cmd":"ping"}"#).unwrap();
    assert_eq!(pong.bool_field("pong"), Some(true));

    let first = client
        .request_raw(r#"{"workload":"toy","si":"both"}"#)
        .unwrap();
    let second = client
        .request_raw(r#"{"workload":"toy","si":"both"}"#)
        .unwrap();
    let p1 = parse(&first).unwrap();
    let p2 = parse(&second).unwrap();
    assert_eq!(p1.bool_field("ok"), Some(true), "first: {first}");
    assert_eq!(p1.bool_field("cached"), Some(false), "first must simulate");
    assert_eq!(p2.bool_field("cached"), Some(true), "second must be served");
    assert_eq!(p1.str_field("fp"), p2.str_field("fp"));
    assert_eq!(codec_text(&first), codec_text(&second));

    let stats = client.request(r#"{"cmd":"stats"}"#).unwrap();
    assert_eq!(stats.str_field("phase"), Some("running"));
    assert_eq!(stats.u64_field("store_len"), Some(1));

    // Bad requests bounce without killing the connection or the daemon.
    let bad = client.request(r#"{"workload":"nope"}"#).unwrap();
    assert_eq!(bad.str_field("kind"), Some("bad-request"));
    assert!(client.request(r#"{"workload":"toy"}"#).is_ok());

    let bye = client.request(r#"{"cmd":"shutdown"}"#).unwrap();
    assert_eq!(bye.bool_field("draining"), Some(true));
    server.join();
    assert_eq!(server.phase(), Phase::Stopped);
    listener.join().unwrap();
}

#[test]
fn concurrent_duplicates_coalesce_into_one_simulation() {
    // The first submission sleeps 400 ms inside the simulator (injected
    // delay), guaranteeing the duplicates arrive while it is pending.
    let cfg = ServerConfig {
        workers: 1,
        batch_max: 1,
        faults: Some(FaultPlan::none(1).with_target("toy/baseline", FaultKind::Delay { ms: 400 })),
        ..test_config()
    };
    let server = Server::start(cfg, MemoStore::in_memory());

    let mut rxs = Vec::new();
    for client in ["a", "b", "c", "d", "e"] {
        match server.submit(client, spec(r#"{"workload":"toy"}"#)) {
            Submitted::Queued(rx) => rxs.push(rx),
            other => panic!(
                "submission for {client} must queue, got {}",
                match other {
                    Submitted::Cached(_) => "cached",
                    Submitted::Shed { reason, .. } => reason,
                    Submitted::Queued(_) => unreachable!(),
                }
            ),
        }
    }
    let replies: Vec<(RunStats, bool)> = rxs.iter().map(recv_ok).collect();
    for (stats, _) in &replies {
        assert_eq!(stats, &replies[0].0, "coalesced replies must be identical");
    }
    let c = server.counters();
    assert_eq!(
        c.simulated.load(std::sync::atomic::Ordering::Relaxed),
        1,
        "five identical submissions, one simulation"
    );
    assert_eq!(c.coalesced.load(std::sync::atomic::Ordering::Relaxed), 4);
    server.drain();
    server.join();
}

#[test]
fn full_queue_and_over_quota_submissions_are_shed() {
    let cfg = ServerConfig {
        queue_cap: 1,
        client_quota: 1,
        workers: 1,
        batch_max: 1,
        faults: Some(FaultPlan::none(2).with_target("toy/baseline", FaultKind::Delay { ms: 800 })),
        ..test_config()
    };
    let server = Server::start(cfg, MemoStore::in_memory());

    // Job 0 is claimed by the dispatcher and sleeps 800 ms...
    let rx0 = match server.submit("c0", spec(r#"{"workload":"toy"}"#)) {
        Submitted::Queued(rx) => rx,
        _ => panic!("job 0 must queue"),
    };
    std::thread::sleep(Duration::from_millis(200)); // let the dispatcher claim it
                                                    // ...so job 1 fills the queue (capacity 1)...
    let rx1 = match server.submit("c1", spec(r#"{"workload":"toy","si":"sos"}"#)) {
        Submitted::Queued(rx) => rx,
        _ => panic!("job 1 must queue"),
    };
    // ...job 2 is shed for queue depth, with a backpressure hint...
    match server.submit("c2", spec(r#"{"workload":"toy","si":"both"}"#)) {
        Submitted::Shed {
            reason,
            retry_after_ms,
        } => {
            assert_eq!(reason, "queue-full");
            assert!(retry_after_ms >= 100);
        }
        _ => panic!("job 2 must be shed"),
    }
    // ...and client 1's second job is shed for quota.
    match server.submit("c1", spec(r#"{"workload":"micro:8@2"}"#)) {
        Submitted::Shed { reason, .. } => assert_eq!(reason, "quota"),
        _ => panic!("over-quota job must be shed"),
    }

    recv_ok(&rx0);
    recv_ok(&rx1);
    let shed = server
        .counters()
        .shed
        .load(std::sync::atomic::Ordering::Relaxed);
    assert_eq!(shed, 2);
    server.drain();
    server.join();
}

#[test]
fn drain_answers_accepted_work_then_sheds_new_submissions() {
    let cfg = ServerConfig {
        workers: 1,
        batch_max: 2,
        faults: Some(FaultPlan::none(3).with_target("toy/baseline", FaultKind::Delay { ms: 200 })),
        ..test_config()
    };
    let server = Server::start(cfg, MemoStore::in_memory());

    let rxs: Vec<Receiver<JobReply>> = [
        r#"{"workload":"toy"}"#,
        r#"{"workload":"toy","si":"sos"}"#,
        r#"{"workload":"toy","si":"both"}"#,
    ]
    .iter()
    .map(|line| match server.submit("c", spec(line)) {
        Submitted::Queued(rx) => rx,
        _ => panic!("pre-drain submissions must queue"),
    })
    .collect();

    server.drain();
    assert_eq!(server.phase(), Phase::Draining);
    match server.submit("c", spec(r#"{"workload":"micro:8@2"}"#)) {
        Submitted::Shed { reason, .. } => assert_eq!(reason, "draining"),
        _ => panic!("post-drain submission must be shed"),
    }

    // Every accepted job still completes — drain never drops work.
    for rx in &rxs {
        recv_ok(rx);
    }
    server.join();
    assert_eq!(server.phase(), Phase::Stopped);
    assert_eq!(server.store().len(), 3, "drained work must be memoized");
}

#[test]
fn chaos_burst_terminates_every_job_and_daemon_survives() {
    // Aggressive deterministic faults, no retries: many jobs fail — but
    // every single one must reach a definite state and the daemon must
    // keep serving afterwards.
    let cfg = ServerConfig {
        workers: 2,
        batch_max: 4,
        max_attempts: 1,
        faults: Some(FaultPlan {
            seed: 42,
            panic_per_mille: 350,
            error_per_mille: 350,
            ..FaultPlan::default()
        }),
        ..test_config()
    };
    let server = Server::start(cfg, MemoStore::in_memory());

    let mut lines = vec![r#"{"workload":"toy"}"#.to_owned()];
    for size in [4, 8, 16] {
        for si in ["off", "sos", "both"] {
            lines.push(format!(r#"{{"workload":"micro:{size}@1","si":"{si}"}}"#));
        }
    }
    let mut rxs = Vec::new();
    for (k, line) in lines.iter().enumerate() {
        match server.submit(&format!("client-{}", k % 3), spec(line)) {
            Submitted::Queued(rx) => rxs.push(rx),
            Submitted::Cached(_) => {}
            Submitted::Shed { .. } => panic!("burst fits the queue, nothing sheds"),
        }
    }
    let mut ok = 0usize;
    let mut failed = 0usize;
    for rx in &rxs {
        match rx.recv_timeout(Duration::from_secs(120)) {
            Ok(Ok(_)) => ok += 1,
            Ok(Err(failure)) => {
                assert!(
                    ["panic", "error", "timeout", "cancelled"].contains(&failure.kind),
                    "unlabeled failure: {failure:?}"
                );
                failed += 1;
            }
            Err(_) => panic!("a job never reached a definite state"),
        }
    }
    assert_eq!(ok + failed, rxs.len(), "no job may vanish");
    assert!(failed > 0, "the chaos plan must actually bite");
    assert!(ok > 0, "some jobs must dodge the 35%+35% rates");

    // Still alive and serving: an unfaulted label round-trips.
    assert_eq!(server.phase(), Phase::Running);
    let c = server.counters();
    let answered = c.ok.load(std::sync::atomic::Ordering::Relaxed)
        + c.failed.load(std::sync::atomic::Ordering::Relaxed);
    assert_eq!(
        answered,
        c.accepted.load(std::sync::atomic::Ordering::Relaxed)
    );
    server.drain();
    server.join();
}

#[test]
fn graceful_restart_serves_journaled_results_byte_identically() {
    let path = std::env::temp_dir().join(format!(
        "subwarp_serve_restart_{}.jsonl",
        std::process::id()
    ));
    let _ = std::fs::remove_file(&path);
    let lines = [
        r#"{"workload":"toy"}"#,
        r#"{"workload":"toy","si":"both"}"#,
        r#"{"workload":"micro:8@2","si":"sos"}"#,
    ];

    let mut first_run: Vec<(u64, RunStats)> = Vec::new();
    {
        let server = Server::start(test_config(), MemoStore::open(&path).unwrap());
        for line in &lines {
            let s = spec(line);
            let fp = s.fp;
            match server.submit("c", s) {
                Submitted::Queued(rx) => first_run.push((fp, recv_ok(&rx).0)),
                _ => panic!("first-run submissions must queue"),
            }
        }
        server.drain();
        server.join();
    }

    // "Restart": reopen the store. The drain timer thread may hold the
    // journal for one last 25 ms tick, so the open retries briefly —
    // exactly what a supervised restart loop does.
    let store = {
        let mut attempt = 0;
        loop {
            match MemoStore::open(&path) {
                Ok(s) => break s,
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock && attempt < 100 => {
                    attempt += 1;
                    std::thread::sleep(Duration::from_millis(20));
                }
                Err(e) => panic!("reopen failed: {e}"),
            }
        }
    };
    assert_eq!(store.restored(), lines.len());
    let server = Server::start(test_config(), store);
    for (line, (fp, stats)) in lines.iter().zip(&first_run) {
        let s = spec(line);
        assert_eq!(s.fp, *fp, "fingerprints are stable across restarts");
        match server.submit("c", s) {
            Submitted::Cached(served) => {
                assert_eq!(&*served, stats, "restored result must be byte-identical");
            }
            _ => panic!("restored fingerprints must be served from the journal"),
        }
    }
    // New work still simulates fresh after a restart.
    match server.submit("c", spec(r#"{"workload":"micro:16@2"}"#)) {
        Submitted::Queued(rx) => {
            recv_ok(&rx);
        }
        _ => panic!("new work must queue"),
    }
    server.drain();
    server.join();
    drop(server);
    std::thread::sleep(Duration::from_millis(60)); // let the lock release
    let _ = std::fs::remove_file(&path);
    let _ = std::fs::remove_file(subwarp_sweep::lock_path_for(&path));
}

#[test]
fn tcp_connection_survives_garbage_and_client_disconnects() {
    let server = Server::start(test_config(), MemoStore::in_memory());
    let (addr, listener) = spawn_listener(Arc::clone(&server));

    // A client that sends garbage and hangs up mid-protocol.
    {
        let mut c = Client::connect(&addr).unwrap();
        let r = c.request("this is not json").unwrap();
        assert_eq!(r.str_field("kind"), Some("bad-request"));
        let r = c.request(r#"{"cmd":"dance"}"#).unwrap();
        assert_eq!(r.str_field("kind"), Some("bad-request"));
        // dropped here without a clean goodbye
    }
    {
        use std::io::Write;
        let mut raw = TcpStream::connect(&addr).unwrap();
        raw.write_all(b"{\"workload\":\"toy\"").unwrap(); // torn line, no \n
        drop(raw);
    }

    // The daemon shrugs and keeps serving.
    let mut c = Client::connect(&addr).unwrap();
    let r = c.request(r#"{"workload":"toy"}"#).unwrap();
    assert_eq!(r.bool_field("ok"), Some(true));

    c.request(r#"{"cmd":"shutdown"}"#).unwrap();
    server.join();
    listener.join().unwrap();
}
