//! End-to-end tests for the sharded cluster: failover when a shard dies,
//! bounded-time shedding when every owner is dead, retry-through-chaos,
//! hostile-client defenses (oversized lines, slowloris), and byte-identical
//! re-serves across a shard restart routed through the cluster front door.
//!
//! Shards are real [`Server`]s behind real TCP listeners (the same
//! connection handler as the `subwarp-serve` binary, including the
//! accept-path read deadlines); the router is the same [`Router`] core the
//! `subwarp-router` binary wraps.

use std::io::{BufRead, BufReader, Read, Write};
use std::net::{TcpListener, TcpStream};
use std::sync::Arc;
use std::time::{Duration, Instant};

use subwarp_pool::Backoff;
use subwarp_serve::chaos::{ChaosPlan, ChaosProxy};
use subwarp_serve::cluster::{Router, RouterConfig};
use subwarp_serve::json::parse;
use subwarp_serve::wire::{serve_connection, WireLimits};
use subwarp_serve::{JobSpec, MemoStore, Phase, Server, ServerConfig};

fn shard_config() -> ServerConfig {
    ServerConfig {
        queue_cap: 16,
        client_quota: 8,
        workers: 2,
        deadline: Some(Duration::from_secs(30)),
        max_attempts: 1,
        batch_max: 4,
        drain_grace: Duration::from_secs(30),
        faults: None,
        jitter_seed: 7,
    }
}

/// A live in-process shard: a [`Server`] behind a real TCP accept loop.
struct Shard {
    server: Arc<Server>,
    addr: String,
    accept: Option<std::thread::JoinHandle<()>>,
}

impl Shard {
    /// Binds `addr` (use `127.0.0.1:0` for ephemeral) and serves `store`
    /// with per-connection `io_timeout` and `limits`, mirroring the
    /// `subwarp-serve` accept path.
    fn spawn_at(
        addr: &str,
        store: MemoStore,
        io_timeout: Option<Duration>,
        limits: WireLimits,
    ) -> Shard {
        let listener = bind_with_retry(addr);
        let addr = listener.local_addr().unwrap().to_string();
        let server = Server::start(shard_config(), store);
        let accept = {
            let server = Arc::clone(&server);
            std::thread::spawn(move || {
                listener.set_nonblocking(true).unwrap();
                while server.phase() == Phase::Running {
                    match listener.accept() {
                        Ok((stream, peer)) => {
                            let _ = stream.set_nodelay(true);
                            let _ = stream.set_read_timeout(io_timeout);
                            let _ = stream.set_write_timeout(io_timeout);
                            let server = Arc::clone(&server);
                            std::thread::spawn(move || {
                                let reader = BufReader::new(stream.try_clone().unwrap());
                                let _ = serve_connection(
                                    &server,
                                    &peer.to_string(),
                                    reader,
                                    &stream,
                                    limits,
                                );
                            });
                        }
                        Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                            std::thread::sleep(Duration::from_millis(5));
                        }
                        Err(_) => break,
                    }
                }
            })
        };
        Shard {
            server,
            addr,
            accept: Some(accept),
        }
    }

    fn spawn(store: MemoStore) -> Shard {
        Shard::spawn_at(
            "127.0.0.1:0",
            store,
            Some(Duration::from_secs(30)),
            WireLimits::default(),
        )
    }

    /// Stops the shard: drains accepted work, waits for the accept loop to
    /// exit so the port is actually released.
    fn stop(mut self) {
        self.server.drain();
        self.server.join();
        if let Some(h) = self.accept.take() {
            let _ = h.join();
        }
    }
}

/// A stopped shard's journal lock is released when the last handler
/// thread drops its `Arc<Server>`, which can trail `stop()` by a moment;
/// retry briefly so restart tests are not flaky.
fn open_store_with_retry(path: &std::path::Path) -> MemoStore {
    let deadline = Instant::now() + Duration::from_secs(5);
    loop {
        match MemoStore::open(path) {
            Ok(s) => return s,
            Err(e) if Instant::now() < deadline => {
                let _ = e;
                std::thread::sleep(Duration::from_millis(50));
            }
            Err(e) => panic!("cannot reopen store: {e}"),
        }
    }
}

/// Port reuse right after a listener closed can transiently refuse; retry
/// briefly so "restart the shard on the same address" is not flaky.
fn bind_with_retry(addr: &str) -> TcpListener {
    let deadline = Instant::now() + Duration::from_secs(5);
    loop {
        match TcpListener::bind(addr) {
            Ok(l) => return l,
            Err(e) if Instant::now() < deadline => {
                let _ = e;
                std::thread::sleep(Duration::from_millis(50));
            }
            Err(e) => panic!("cannot bind {addr}: {e}"),
        }
    }
}

/// A router tuned for tests: tight dial deadlines, fast backoff, manual
/// probing (the interval only matters when `start_health` runs).
fn test_router(shards: Vec<String>, replicas: usize, attempts: u32) -> Arc<Router> {
    Router::new(RouterConfig {
        shards,
        replicas,
        connect_timeout: Duration::from_millis(250),
        ping_timeout: Duration::from_millis(500),
        run_timeout: Duration::from_secs(30),
        attempts,
        backoff: Backoff {
            base: Duration::from_millis(10),
            max: Duration::from_millis(40),
            jitter_seed: 11,
        },
        health_interval: Duration::from_millis(100),
        shed_retry_after_ms: 200,
    })
}

fn fp_of(spec_line: &str) -> u64 {
    JobSpec::from_request(&parse(spec_line).unwrap())
        .unwrap()
        .fp
}

const SPEC: &str = r#"{"workload":"toy","si":"both"}"#;

#[test]
fn failover_survives_a_dead_primary() {
    let a = Shard::spawn(MemoStore::in_memory());
    let b = Shard::spawn(MemoStore::in_memory());
    let addrs = vec![a.addr.clone(), b.addr.clone()];
    let router = test_router(addrs, 1, 2);
    router.probe_all();

    let fp = fp_of(SPEC);
    let owners = router.owners(fp);
    assert_eq!(owners.len(), 2, "with replicas=1 every fp has 2 owners");

    // Healthy cluster: the request lands on the primary.
    let reply = router.route_run(SPEC, fp);
    assert!(
        reply.contains("\"ok\":true"),
        "healthy route failed: {reply}"
    );

    // Kill the primary owner; the same fingerprint must fail over to the
    // ring successor and still succeed.
    let shards = [a, b];
    let mut shards: Vec<Option<Shard>> = shards.into_iter().map(Some).collect();
    shards[owners[0]].take().unwrap().stop();
    let reply = router.route_run(SPEC, fp);
    assert!(
        reply.contains("\"ok\":true"),
        "failover route failed: {reply}"
    );
    let stats = router.stats_json();
    assert!(stats.contains("\"failovers\":"), "{stats}");

    for s in shards.into_iter().flatten() {
        s.stop();
    }
}

#[test]
fn all_owners_dead_sheds_in_bounded_time() {
    // Bind-and-drop two ports so nobody is listening on either.
    let dead = |_: usize| {
        let l = TcpListener::bind("127.0.0.1:0").unwrap();
        l.local_addr().unwrap().to_string()
    };
    let router = test_router(vec![dead(0), dead(1)], 1, 2);
    router.probe_all();

    let fp = fp_of(SPEC);
    let started = Instant::now();
    let reply = router.route_run(SPEC, fp);
    let took = started.elapsed();
    assert!(reply.contains("\"kind\":\"shed\""), "{reply}");
    assert!(reply.contains("\"retry_after_ms\":200"), "{reply}");
    // Probed-down owners get a single quick dial each; well under the
    // full retry ladder and nowhere near a hang.
    assert!(took < Duration::from_secs(5), "shed took {took:?}");

    let pong = router.handle_line("{\"cmd\":\"ping\"}").0;
    assert!(pong.contains("\"shards_up\":0"), "{pong}");
}

#[test]
fn retries_ride_out_transient_chaos() {
    let shard = Shard::spawn(MemoStore::in_memory());
    // The first few dials are refused, then the network heals: with
    // retries the job must still come back ok, and deterministically so.
    let plan = ChaosPlan {
        refuse_per_mille: 1000,
        clears_after: Some(2),
        ..ChaosPlan::none(99)
    };
    let proxy = ChaosProxy::spawn(&shard.addr, plan).unwrap();
    let router = test_router(vec![proxy.addr().to_owned()], 0, 4);

    let fp = fp_of(SPEC);
    let reply = router.route_run(SPEC, fp);
    assert!(reply.contains("\"ok\":true"), "chaos route failed: {reply}");
    assert!(
        proxy.accepted() >= 3,
        "proxy saw {} conns",
        proxy.accepted()
    );

    drop(proxy);
    shard.stop();
}

#[test]
fn garbage_replies_are_retried_not_propagated() {
    let shard = Shard::spawn(MemoStore::in_memory());
    // Every connection gets a garbage line prepended to the reply stream
    // until the plan clears; the router must never forward garbage to its
    // client.
    let plan = ChaosPlan {
        garbage_per_mille: 1000,
        clears_after: Some(1),
        ..ChaosPlan::none(5)
    };
    let proxy = ChaosProxy::spawn(&shard.addr, plan).unwrap();
    let router = test_router(vec![proxy.addr().to_owned()], 0, 3);

    let fp = fp_of(SPEC);
    let reply = router.route_run(SPEC, fp);
    assert!(reply.contains("\"ok\":true"), "reply: {reply}");
    assert!(parse(&reply).is_ok(), "router forwarded garbage: {reply}");

    drop(proxy);
    shard.stop();
}

#[test]
fn oversized_request_line_gets_typed_error_and_close() {
    let shard = Shard::spawn_at(
        "127.0.0.1:0",
        MemoStore::in_memory(),
        Some(Duration::from_secs(30)),
        WireLimits { max_line: 256 },
    );

    let mut conn = TcpStream::connect(&shard.addr).unwrap();
    let huge = format!("{{\"workload\":\"{}\"}}\n", "x".repeat(4096));
    conn.write_all(huge.as_bytes()).unwrap();
    conn.flush().unwrap();

    let mut reader = BufReader::new(conn.try_clone().unwrap());
    let mut reply = String::new();
    reader.read_line(&mut reply).unwrap();
    assert!(reply.contains("\"kind\":\"too-long\""), "{reply}");
    // The connection is closed after the reply: next read is EOF.
    let mut rest = String::new();
    reader.read_to_string(&mut rest).unwrap();
    assert!(rest.is_empty(), "expected close, got {rest:?}");

    let stats = shard.server.stats_json();
    assert!(stats.contains("\"oversized\":1"), "{stats}");
    shard.stop();
}

#[test]
fn slowloris_connection_is_cut_and_counted() {
    let shard = Shard::spawn_at(
        "127.0.0.1:0",
        MemoStore::in_memory(),
        Some(Duration::from_millis(200)),
        WireLimits::default(),
    );

    // Send half a request line and stall; the accept-path read deadline
    // must cut us off rather than pin the handler thread.
    let mut conn = TcpStream::connect(&shard.addr).unwrap();
    conn.write_all(b"{\"workload\":").unwrap();
    conn.flush().unwrap();

    let mut buf = Vec::new();
    conn.set_read_timeout(Some(Duration::from_secs(10)))
        .unwrap();
    let n = conn.read_to_end(&mut buf).unwrap_or(0);
    assert_eq!(n, 0, "server should close without replying, got {buf:?}");

    // The cut is accounted for.
    let deadline = Instant::now() + Duration::from_secs(5);
    loop {
        let stats = shard.server.stats_json();
        if stats.contains("\"conn_timeouts\":1") {
            break;
        }
        assert!(Instant::now() < deadline, "timeout never counted: {stats}");
        std::thread::sleep(Duration::from_millis(20));
    }
    shard.stop();
}

#[test]
fn restarted_shard_re_serves_byte_identically_through_the_router() {
    let dir = std::env::temp_dir();
    let store_path = dir.join(format!(
        "subwarp_cluster_store_{}.jsonl",
        std::process::id()
    ));
    let _ = std::fs::remove_file(&store_path);
    let _ = std::fs::remove_file(subwarp_sweep::lock_path_for(&store_path));

    let shard = Shard::spawn(MemoStore::open(&store_path).unwrap());
    let addr = shard.addr.clone();
    let router = test_router(vec![addr.clone()], 0, 3);

    let fp = fp_of(SPEC);
    let first = router.route_run(SPEC, fp);
    assert!(first.contains("\"ok\":true"), "{first}");
    assert!(first.contains("\"cached\":false"), "{first}");

    // Stop the shard (drains + journals), restart on the same address with
    // the same store, and re-route the identical request.
    shard.stop();
    let shard = Shard::spawn_at(
        &addr,
        open_store_with_retry(&store_path),
        Some(Duration::from_secs(30)),
        WireLimits::default(),
    );
    let second = router.route_run(SPEC, fp);
    assert!(second.contains("\"cached\":true"), "{second}");

    // The exact integer codec must survive the restart and the extra hop.
    let codec = |raw: &str| {
        let u = raw.find("\"u\":[").unwrap();
        raw[u..].to_owned()
    };
    assert_eq!(codec(&first), codec(&second));

    shard.stop();
    let _ = std::fs::remove_file(&store_path);
    let _ = std::fs::remove_file(subwarp_sweep::lock_path_for(&store_path));
}
