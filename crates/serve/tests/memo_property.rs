//! Property: the memo store is a perfect stand-in for the simulator.
//!
//! For every workload in the corpus, the `RunStats` served from a
//! journal-backed store — recorded, written to disk through the integer
//! codec, and read back by a *fresh* store instance — must equal a fresh
//! simulation field-for-field. `RunStats` is all-integer, so equality here
//! is byte-identity; any codec field drift or lossy round-trip fails loud.
//!
//! The always-on corpus is toy + micro + a 20-seed slice of the fuzzer's
//! random workload generator; the full built-in trace suite runs in
//! release builds only (suite simulations are minutes in debug — same
//! gating as the bench determinism suite).

use std::sync::Arc;

use subwarp_core::{SiConfig, SmConfig, Workload};
use subwarp_serve::MemoStore;
use subwarp_sweep::{cell_fingerprint, lock_path_for, workload_hash};

fn configs() -> Vec<(String, SmConfig, SiConfig)> {
    let sm = SmConfig::turing_like();
    vec![
        ("base".into(), sm.clone(), SiConfig::disabled()),
        ("si".into(), sm, SiConfig::best()),
    ]
}

/// Simulates every (workload × config) cell fresh, records it in a
/// journal-backed store, reopens the store cold, and demands byte-identical
/// lookups for every fingerprint.
fn assert_store_matches_fresh_sim(tag: &str, corpus: Vec<(String, Arc<Workload>)>) {
    let path = std::env::temp_dir().join(format!(
        "subwarp_memo_prop_{tag}_{}.jsonl",
        std::process::id()
    ));
    let _ = std::fs::remove_file(&path);
    let _ = std::fs::remove_file(lock_path_for(&path));

    let mut expected = Vec::new();
    {
        let store = MemoStore::open(&path).unwrap();
        for (wname, wl) in &corpus {
            let whash = workload_hash(wl);
            for (cname, sm, si) in configs() {
                let label = format!("{wname}/{cname}");
                let stats = match subwarp_core::Simulator::new(sm.clone(), si).run(wl) {
                    Ok(s) => s,
                    // A degenerate random workload that the simulator
                    // rejects outright has nothing to memoize.
                    Err(_) => continue,
                };
                let fp = cell_fingerprint(&label, whash, &sm, &si);
                store.record(fp, &label, &stats);
                expected.push((label, fp, stats));
            }
        }
        assert!(!expected.is_empty(), "corpus produced no cells");
    }

    let store = MemoStore::open(&path).unwrap();
    assert_eq!(store.restored(), expected.len());
    for (label, fp, stats) in &expected {
        let served = store
            .lookup(*fp)
            .unwrap_or_else(|| panic!("{label}: fingerprint lost on reopen"));
        assert_eq!(
            &served, stats,
            "{label}: store result differs from fresh sim"
        );
    }
    drop(store);
    let _ = std::fs::remove_file(&path);
    let _ = std::fs::remove_file(lock_path_for(&path));
}

#[test]
fn memo_store_matches_fresh_sim_for_toy_micro_and_fuzz_seeds() {
    let mut corpus: Vec<(String, Arc<Workload>)> = vec![
        (
            "toy".into(),
            Arc::new(subwarp_workloads::figure9_workload()),
        ),
        (
            "micro".into(),
            Arc::new(subwarp_workloads::microbenchmark(8, 2)),
        ),
    ];
    for seed in 0..20u64 {
        corpus.push((
            format!("fuzz-{seed}"),
            Arc::new(subwarp_fuzz::random_workload(seed)),
        ));
    }
    assert_store_matches_fresh_sim("fuzz", corpus);
}

#[cfg(not(debug_assertions))]
#[test]
fn memo_store_matches_fresh_sim_for_the_built_in_suite() {
    let corpus: Vec<(String, Arc<Workload>)> = subwarp_workloads::built_suite()
        .iter()
        .map(|(t, wl)| (t.name.to_owned(), Arc::clone(wl)))
        .collect();
    assert_store_matches_fresh_sim("suite", corpus);
}
