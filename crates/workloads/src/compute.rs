//! Classic (non-raytracing) compute kernels.
//!
//! The paper's §VI reports: "We profiled a broad suite of more than 400
//! non-raytracing CUDA and Direct3D compute kernels and found only 11 that
//! feature long stalls in divergent code, and none benefited beyond the
//! margin of noise from SI." This module provides the archetypes those 400
//! kernels are made of — streaming SAXPY, tree reduction, stencils, tiled
//! matmul inner loops, scatter histograms, and branchy-but-memory-light
//! code — so the reproduction can demonstrate the same negative result:
//! Subwarp Interleaving needs *long stalls inside divergent code* plus
//! *low occupancy*, and ordinary compute kernels provide neither.

use subwarp_core::{InitValue, Workload, WARP_SIZE};
use subwarp_isa::{Barrier, CmpOp, Operand, Pred, ProgramBuilder, Reg, Scoreboard};

/// Memory-region bases, spaced so kernels never alias.
const X_BASE: i64 = 1 << 32;
const Y_BASE: i64 = 1 << 33;
const OUT_BASE: i64 = 1 << 34;

fn finish(b: ProgramBuilder) -> subwarp_isa::Program {
    b.build().expect("compute kernels are valid programs")
}

/// `y[i] = a * x[i] + y[i]` over `iters` grid-strided elements: fully
/// convergent, streaming, bandwidth-shaped.
pub fn saxpy(iters: u32, n_warps: usize) -> Workload {
    let mut b = ProgramBuilder::new();
    let loop_ = b.label("loop");
    let stride = (n_warps * WARP_SIZE) as i64 * 8;
    // R1/R2: x/y cursors; R9: trip counter.
    b.imad(Reg(1), Reg(0), Operand::imm(8), Operand::imm(X_BASE));
    b.imad(Reg(2), Reg(0), Operand::imm(8), Operand::imm(Y_BASE));
    b.mov(Reg(9), Operand::imm(iters as i64));
    b.place(loop_);
    b.ldg(Reg(3), Reg(1), 0).wr_sb(Scoreboard(0));
    b.ldg(Reg(4), Reg(2), 0).wr_sb(Scoreboard(1));
    b.ffma(Reg(5), Reg(3), Operand::fimm(2.0), Operand::reg(4))
        .req_sb(Scoreboard(0))
        .req_sb(Scoreboard(1));
    b.stg(Reg(5), Reg(2), 0);
    b.iadd(Reg(1), Reg(1), Operand::imm(stride));
    b.iadd(Reg(2), Reg(2), Operand::imm(stride));
    b.iadd(Reg(9), Reg(9), Operand::imm(-1));
    b.isetp(Pred(1), Reg(9), Operand::imm(0), CmpOp::Gt);
    b.bra(loop_).pred(Pred(1), false);
    b.exit();
    Workload::new("compute/saxpy", finish(b), n_warps).with_init(Reg(0), InitValue::GlobalTid)
}

/// A 1-D three-point stencil: convergent loads with spatial reuse.
pub fn stencil(iters: u32, n_warps: usize) -> Workload {
    let mut b = ProgramBuilder::new();
    let loop_ = b.label("loop");
    let stride = (n_warps * WARP_SIZE) as i64 * 8;
    b.imad(Reg(1), Reg(0), Operand::imm(8), Operand::imm(X_BASE));
    b.mov(Reg(9), Operand::imm(iters as i64));
    b.place(loop_);
    b.ldg(Reg(3), Reg(1), -8).wr_sb(Scoreboard(0));
    b.ldg(Reg(4), Reg(1), 0).wr_sb(Scoreboard(1));
    b.ldg(Reg(5), Reg(1), 8).wr_sb(Scoreboard(2));
    b.fadd(Reg(6), Reg(3), Operand::reg(4))
        .req_sb(Scoreboard(0))
        .req_sb(Scoreboard(1));
    b.fadd(Reg(6), Reg(5), Operand::reg(6))
        .req_sb(Scoreboard(2));
    b.fmul(Reg(6), Reg(6), Operand::fimm(1.0 / 3.0));
    b.imad(Reg(7), Reg(0), Operand::imm(8), Operand::imm(OUT_BASE));
    b.stg(Reg(6), Reg(7), 0);
    b.iadd(Reg(1), Reg(1), Operand::imm(stride));
    b.iadd(Reg(9), Reg(9), Operand::imm(-1));
    b.isetp(Pred(1), Reg(9), Operand::imm(0), CmpOp::Gt);
    b.bra(loop_).pred(Pred(1), false);
    b.exit();
    Workload::new("compute/stencil", finish(b), n_warps).with_init(Reg(0), InitValue::GlobalTid)
}

/// A tiled-matmul inner loop: shared-memory operands + a dense FFMA chain
/// (compute-bound; the archetype SI cannot help).
pub fn matmul_tile(iters: u32, n_warps: usize) -> Workload {
    let mut b = ProgramBuilder::new();
    let loop_ = b.label("loop");
    b.imad(Reg(1), Reg(0), Operand::imm(8), Operand::imm(0));
    b.mov(Reg(9), Operand::imm(iters as i64));
    b.place(loop_);
    // Tile operands from shared memory (short latency, no scoreboard).
    b.lds(Reg(3), Reg(1), 0);
    b.lds(Reg(4), Reg(1), 1024);
    for k in 0..16 {
        b.ffma(
            Reg(10 + k % 8),
            Reg(3),
            Operand::reg(4),
            Operand::reg(10 + (k % 8)),
        );
    }
    b.iadd(Reg(1), Reg(1), Operand::imm(8));
    b.iadd(Reg(9), Reg(9), Operand::imm(-1));
    b.isetp(Pred(1), Reg(9), Operand::imm(0), CmpOp::Gt);
    b.bra(loop_).pred(Pred(1), false);
    b.exit();
    Workload::new("compute/matmul-tile", finish(b), n_warps).with_init(Reg(0), InitValue::GlobalTid)
}

/// A parallel tree reduction with `__syncwarp`-style phases: convergent,
/// synchronization-heavy.
pub fn reduction(n_warps: usize) -> Workload {
    let mut b = ProgramBuilder::new();
    b.imad(Reg(1), Reg(0), Operand::imm(8), Operand::imm(X_BASE));
    b.ldg(Reg(3), Reg(1), 0).wr_sb(Scoreboard(0));
    b.fadd(Reg(4), Reg(3), Operand::fimm(0.0))
        .req_sb(Scoreboard(0));
    // log2(32) butterfly phases, each re-synchronized at a barrier.
    for (phase, shift) in [16i64, 8, 4, 2, 1].iter().enumerate() {
        let sync = b.label(&format!("sync{phase}"));
        b.bssy(Barrier(phase as u8), sync);
        // Partner value via shared memory (stand-in for a shuffle).
        b.stg(Reg(4), Reg(1), 0);
        b.lds(Reg(5), Reg(1), *shift * 8);
        b.fadd(Reg(4), Reg(4), Operand::reg(5));
        b.place(sync);
        b.bsync(Barrier(phase as u8));
    }
    b.imad(Reg(6), Reg(0), Operand::imm(8), Operand::imm(OUT_BASE));
    b.stg(Reg(4), Reg(6), 0);
    b.exit();
    Workload::new("compute/reduction", finish(b), n_warps).with_init(Reg(0), InitValue::GlobalTid)
}

/// A scatter histogram: data-dependent store addresses, convergent control
/// flow.
pub fn histogram(iters: u32, n_warps: usize) -> Workload {
    let mut b = ProgramBuilder::new();
    let loop_ = b.label("loop");
    let stride = (n_warps * WARP_SIZE) as i64 * 8;
    b.imad(Reg(1), Reg(0), Operand::imm(8), Operand::imm(X_BASE));
    b.mov(Reg(9), Operand::imm(iters as i64));
    b.place(loop_);
    b.ldg(Reg(3), Reg(1), 0).wr_sb(Scoreboard(0));
    // bin = value & 1023; scatter-increment its counter.
    b.and(Reg(4), Reg(3), Operand::imm(1023))
        .req_sb(Scoreboard(0));
    b.imad(Reg(5), Reg(4), Operand::imm(8), Operand::imm(OUT_BASE));
    b.ldg(Reg(6), Reg(5), 0).wr_sb(Scoreboard(1));
    b.iadd(Reg(6), Reg(6), Operand::imm(1))
        .req_sb(Scoreboard(1));
    b.stg(Reg(6), Reg(5), 0);
    b.iadd(Reg(1), Reg(1), Operand::imm(stride));
    b.iadd(Reg(9), Reg(9), Operand::imm(-1));
    b.isetp(Pred(1), Reg(9), Operand::imm(0), CmpOp::Gt);
    b.bra(loop_).pred(Pred(1), false);
    b.exit();
    Workload::new("compute/histogram", finish(b), n_warps).with_init(Reg(0), InitValue::GlobalTid)
}

/// Divergent control flow whose bodies are pure math — the common "branchy
/// compute" case where divergence exists but there is nothing for SI to
/// overlap.
pub fn branchy_math(iters: u32, n_warps: usize) -> Workload {
    let mut b = ProgramBuilder::new();
    let loop_ = b.label("loop");
    b.mov(Reg(9), Operand::imm(iters as i64));
    b.place(loop_);
    let else_ = b.label(&format!("else{}", b.here()));
    let sync = b.label(&format!("sync{}", b.here()));
    b.and(Reg(2), Reg(0), Operand::imm(1));
    b.isetp(Pred(0), Reg(2), Operand::imm(0), CmpOp::Eq);
    b.bssy(Barrier(0), sync);
    b.bra(else_).pred(Pred(0), false);
    for _ in 0..12 {
        b.ffma(
            Reg(10),
            Reg(10),
            Operand::fimm(1.000001),
            Operand::fimm(0.25),
        );
    }
    b.bra(sync);
    b.place(else_);
    for _ in 0..12 {
        b.ffma(
            Reg(11),
            Reg(11),
            Operand::fimm(0.999999),
            Operand::fimm(0.75),
        );
    }
    b.bra(sync);
    b.place(sync);
    b.bsync(Barrier(0));
    b.iadd(Reg(9), Reg(9), Operand::imm(-1));
    b.isetp(Pred(1), Reg(9), Operand::imm(0), CmpOp::Gt);
    b.bra(loop_).pred(Pred(1), false);
    b.exit();
    Workload::new("compute/branchy-math", finish(b), n_warps).with_init(Reg(0), InitValue::LaneId)
}

/// The rare case (11 of the paper's 400): long stalls *inside* divergent
/// code — but at healthy occupancy and with a real compute phase, so
/// ordinary warp-level TLP already hides them and SI adds nothing "beyond
/// the margin of noise".
pub fn divergent_loads_full_occupancy(iters: u32) -> Workload {
    let n_warps = 32; // full SM
    let mut b = ProgramBuilder::new();
    let loop_ = b.label("loop");
    b.imad(Reg(1), Reg(0), Operand::imm(32), Operand::imm(X_BASE));
    b.mov(Reg(9), Operand::imm(iters as i64));
    b.place(loop_);
    // The convergent compute phase that real kernels have: with 8 warps per
    // processing block, this is what the warp scheduler hides stalls under.
    for i in 0..96u32 {
        let r = Reg(20 + (i % 12) as u8);
        b.ffma(r, r, Operand::fimm(1.000001), Operand::fimm(0.5));
    }
    let else_ = b.label(&format!("else{}", b.here()));
    let sync = b.label(&format!("sync{}", b.here()));
    b.and(Reg(2), Reg(0), Operand::imm(1));
    b.isetp(Pred(0), Reg(2), Operand::imm(0), CmpOp::Eq);
    b.bssy(Barrier(0), sync);
    b.bra(else_).pred(Pred(0), false);
    b.ldg(Reg(3), Reg(1), 0).wr_sb(Scoreboard(0));
    b.fadd(Reg(4), Reg(3), Operand::fimm(1.0))
        .req_sb(Scoreboard(0));
    b.bra(sync);
    b.place(else_);
    b.ldg(Reg(3), Reg(1), 0x10_000).wr_sb(Scoreboard(1));
    b.fadd(Reg(5), Reg(3), Operand::fimm(2.0))
        .req_sb(Scoreboard(1));
    b.bra(sync);
    b.place(sync);
    b.bsync(Barrier(0));
    // The divergent loads re-read the same lines every trip: after the
    // cold first iteration they are L1D hits, as most real divergent
    // loads are — long stalls in divergent code exist, but only on the
    // cold path.
    b.iadd(Reg(9), Reg(9), Operand::imm(-1));
    b.isetp(Pred(1), Reg(9), Operand::imm(0), CmpOp::Gt);
    b.bra(loop_).pred(Pred(1), false);
    b.exit();
    Workload::new("compute/divergent-loads-hi-occ", finish(b), n_warps)
        .with_init(Reg(0), InitValue::GlobalTid)
}

/// The full non-raytracing compute suite (paper §VI's negative result).
pub fn compute_suite() -> Vec<Workload> {
    vec![
        saxpy(16, 32),
        stencil(16, 32),
        matmul_tile(24, 32),
        reduction(32),
        histogram(16, 32),
        branchy_math(16, 32),
        divergent_loads_full_occupancy(32),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use subwarp_core::{SiConfig, Simulator, SmConfig};

    #[test]
    fn all_compute_kernels_run_to_completion() {
        let sim = Simulator::new(SmConfig::turing_like(), SiConfig::disabled());
        for wl in compute_suite() {
            let s = sim.run(&wl).unwrap();
            assert!(s.instructions > 0, "{} did nothing", wl.name);
        }
    }

    #[test]
    fn convergent_kernels_never_demote_subwarps() {
        let sim = Simulator::new(SmConfig::turing_like(), SiConfig::best());
        for wl in [
            saxpy(4, 8),
            stencil(4, 8),
            matmul_tile(4, 8),
            histogram(4, 8),
        ] {
            let s = sim.run(&wl).unwrap();
            assert_eq!(
                s.subwarp_stalls, 0,
                "{} has no divergence to exploit",
                wl.name
            );
        }
    }

    #[test]
    fn branchy_math_diverges_but_never_stalls_divergently() {
        let sim = Simulator::new(SmConfig::turing_like(), SiConfig::best());
        let s = sim.run(&branchy_math(8, 8)).unwrap();
        assert!(s.divergences > 0, "the kernel must actually diverge");
        assert_eq!(
            s.subwarp_stalls, 0,
            "math-only bodies never load-to-use stall"
        );
    }
}
