//! The paper's Figure 9 toy kernel: a divergent if-then-else with a
//! load-to-use stall on each path.

use subwarp_core::{InitValue, Workload};
use subwarp_isa::{Barrier, CmpOp, Operand, Pred, Program, ProgramBuilder, Reg, Scoreboard};

/// Builds the Figure 9 listing, preceded by an `ISETP` that sets `P0` for
/// the first `taken_lanes` lanes (the paper presets "P0 is 1 for t0, 0 for
/// t1").
///
/// The pc layout mirrors the paper's numbering: the divergent branch, the
/// `TLD`/`FMUL` then-path guarded by `sb5`, the `TEX`/`FADD` else-path
/// guarded by `sb2`, and the `BSYNC B0` convergence point.
pub fn figure9_program(taken_lanes: i64) -> Program {
    let mut b = ProgramBuilder::new();
    let else_ = b.label("Else");
    let sync = b.label("syncPoint");
    b.isetp(Pred(0), Reg(0), Operand::imm(taken_lanes), CmpOp::Lt);
    // 1. BSSY B0, syncPoint
    b.bssy(Barrier(0), sync);
    // 2. @P0 BRA Else
    b.bra(else_).pred(Pred(0), false);
    // 3. TLD R2, R0, R1; &wr=sb5
    b.tld(Reg(2), Reg(4)).wr_sb(Scoreboard(5));
    // 4. FMUL R10, R5, c[1][16]
    b.fmul(Reg(10), Reg(5), Operand::cbank(1, 16));
    // 5. FMUL R2, R2, R10; &req=sb5 (load-to-use stall)
    b.fmul(Reg(2), Reg(2), Operand::reg(10))
        .req_sb(Scoreboard(5));
    // 6. BRA syncPoint
    b.bra(sync);
    b.place(else_);
    // 7. TEX R1, R8, R9; &wr=sb2
    b.tex(Reg(1), Reg(6)).wr_sb(Scoreboard(2));
    // 8. FADD R1, R1, R3; &req=sb2 (load-to-use stall)
    b.fadd(Reg(1), Reg(1), Operand::reg(3))
        .req_sb(Scoreboard(2));
    // 9. BRA syncPoint
    b.bra(sync);
    b.place(sync);
    // 10. BSYNC B0
    b.bsync(Barrier(0));
    b.exit();
    b.build().expect("figure 9 program is valid")
}

/// The two-thread workload of the Figure 10 walkthroughs: one lane per
/// subwarp, each path loading a distinct (compulsory-miss) line.
pub fn figure9_workload() -> Workload {
    Workload::new("fig9-toy", figure9_program(1), 1)
        .with_threads_per_warp(2)
        .with_init(Reg(0), InitValue::LaneId)
        .with_init(Reg(4), InitValue::Const(0x10_000))
        .with_init(Reg(6), InitValue::Const(0x20_000))
}

#[cfg(test)]
mod tests {
    use super::*;
    use subwarp_core::{SiConfig, Simulator, SmConfig};

    #[test]
    fn toy_layout_matches_paper_pc_numbering() {
        let p = figure9_program(1);
        // 12 instructions: prelude + the 11-line listing.
        assert_eq!(p.len(), 12);
        let dis = p.to_string();
        assert!(dis.contains("BSSY B0"));
        assert!(dis.contains("&wr=sb5"));
        assert!(dis.contains("&req=sb2"));
    }

    #[test]
    fn toy_runs_on_both_configs() {
        let wl = figure9_workload();
        let base = Simulator::new(SmConfig::turing_like(), SiConfig::disabled())
            .run(&wl)
            .unwrap();
        let si = Simulator::new(SmConfig::turing_like(), SiConfig::best())
            .run(&wl)
            .unwrap();
        assert!(si.cycles < base.cycles);
    }
}
