//! The ten named application traces of the paper's Table II.
//!
//! The originals are captures of commercial games (Battlefield V, Control,
//! Minecraft, …) that cannot be redistributed; each entry here is a
//! megakernel configuration placed to occupy the same *characteristic
//! position* the paper reports for its namesake:
//!
//! - **BFV1/BFV2** (reflections): high hit entropy, loads concentrated in
//!   divergent shader bodies, low occupancy → large divergent-stall share
//!   (the biggest SI winners in Figure 12a).
//! - **Coll1/Coll2** (internal demos): structured scene, most loads in
//!   convergent common code → stalls exist but are not divergent (small SI
//!   gains despite visible stall reductions — paper §V-B).
//! - **AV1/AV2** (ArchViz GI-D/AO), **Ctrl**, **DDGI**, **MC**, **MW**:
//!   intermediate mixes of entropy, traversal weight, occupancy, and
//!   shader heaviness.

use crate::megakernel::{MegakernelConfig, SceneKind, ShaderProfile};
use std::sync::{Arc, OnceLock};
use subwarp_core::Workload;
use subwarp_prng::SmallRng;

/// A named trace: its Table II description plus the generator
/// configuration.
#[derive(Debug, Clone, PartialEq)]
pub struct TraceSpec {
    /// Short name used in every figure (`AV1`, `BFV1`, …).
    pub name: &'static str,
    /// Table II description of the original trace.
    pub description: &'static str,
    /// The megakernel generator configuration standing in for the capture.
    pub config: MegakernelConfig,
}

impl TraceSpec {
    /// Builds the simulator workload (traces rays, emits the program).
    pub fn build(&self) -> Workload {
        self.config.build()
    }
}

/// Derives per-shader profiles deterministically from ranges.
///
/// `cold_frac` is the probability a shader carries cold (streaming,
/// compulsory-miss) loads at all; the rest read only the hot L1D-resident
/// region. Mixed warps whose subwarps differ in stall behaviour reproduce
/// the paper's execution-order sensitivity (§VI, limiter #3).
#[allow(clippy::too_many_arguments)]
fn profiles(
    materials: u32,
    seed: u64,
    tex: (usize, usize),
    ldg: (usize, usize),
    hot: usize,
    math: (usize, usize),
    trips: (u32, u32),
    pad: (usize, usize),
    cold_frac: f64,
) -> Vec<ShaderProfile> {
    let mut rng = SmallRng::seed_from_u64(seed);
    let mut v: Vec<ShaderProfile> = Vec::with_capacity(materials as usize + 1);
    for _ in 0..materials {
        let mut sample = |lo: usize, hi: usize| {
            if lo >= hi {
                lo
            } else {
                rng.gen_range(lo..=hi)
            }
        };
        let tex_ops = sample(tex.0, tex.1);
        let ldg_ops = sample(ldg.0, ldg.1);
        let math_ops = sample(math.0, math.1);
        let code_pad = sample(pad.0, pad.1);
        let t = sample(trips.0 as usize, trips.1 as usize) as u32;
        let total_mem = tex_ops + ldg_ops;
        // Deterministic Bresenham spread: exactly round(materials*cold_frac)
        // shaders carry cold loads, evenly distributed over shader ids, so
        // the knob moves trace behaviour smoothly.
        let s_idx = v.len() as f64;
        let has_cold = ((s_idx + 1.0) * cold_frac).floor() > (s_idx * cold_frac).floor() + 1e-9
            || (cold_frac >= 1.0 - 1e-9);
        v.push(ShaderProfile {
            tex_ops,
            ldg_ops,
            hot_loads: if has_cold {
                hot.min(total_mem)
            } else {
                total_mem
            },
            math_ops,
            trips: t,
            code_pad,
        });
    }
    v.push(ShaderProfile::miss());
    v
}

fn mk(name: &'static str, description: &'static str, config: MegakernelConfig) -> TraceSpec {
    TraceSpec {
        name,
        description,
        config,
    }
}

/// The full ten-trace suite (Table II order).
pub fn suite() -> Vec<TraceSpec> {
    vec![
        mk(
            "AV1",
            "ArchViz Interior, GI-Diffuse (Unreal Engine 4)",
            MegakernelConfig {
                name: "AV1".into(),
                scene: SceneKind::Soup {
                    triangles: 3000,
                    materials: 6,
                },
                bounces: 2,
                n_warps: 12,
                seed: 101,
                profiles: profiles(6, 101, (1, 1), (1, 2), 2, (16, 28), (1, 1), (16, 40), 0.85),
                common_ldg: 1,
                common_math: 24,
            },
        ),
        mk(
            "AV2",
            "ArchViz Interior, Ambient Occlusion (Unreal Engine 4)",
            MegakernelConfig {
                name: "AV2".into(),
                scene: SceneKind::Soup {
                    triangles: 3000,
                    materials: 4,
                },
                bounces: 2,
                n_warps: 28,
                seed: 102,
                profiles: profiles(4, 102, (0, 1), (1, 1), 1, (18, 30), (1, 1), (12, 24), 0.45),
                common_ldg: 1,
                common_math: 28,
            },
        ),
        mk(
            "BFV1",
            "Battlefield V scene 1, Reflections (Frostbite 3)",
            MegakernelConfig {
                name: "BFV1".into(),
                scene: SceneKind::Soup {
                    triangles: 6000,
                    materials: 10,
                },
                bounces: 2,
                n_warps: 18,
                seed: 103,
                profiles: profiles(10, 103, (1, 1), (1, 1), 1, (10, 16), (1, 1), (20, 48), 0.4),
                common_ldg: 0,
                common_math: 12,
            },
        ),
        mk(
            "BFV2",
            "Battlefield V scene 2, Reflections (Frostbite 3)",
            MegakernelConfig {
                name: "BFV2".into(),
                scene: SceneKind::Soup {
                    triangles: 5000,
                    materials: 8,
                },
                bounces: 2,
                n_warps: 18,
                seed: 104,
                profiles: profiles(8, 104, (1, 1), (1, 1), 1, (10, 18), (1, 1), (16, 40), 0.45),
                common_ldg: 0,
                common_math: 14,
            },
        ),
        mk(
            "Coll1",
            "RTX Collage demo 1, Ambient Occlusion",
            MegakernelConfig {
                name: "Coll1".into(),
                scene: SceneKind::City {
                    width: 24,
                    depth: 6,
                    materials: 3,
                },
                bounces: 2,
                n_warps: 24,
                seed: 105,
                profiles: profiles(3, 105, (0, 1), (1, 1), 2, (14, 22), (1, 1), (8, 16), 1.0),
                common_ldg: 3,
                common_math: 20,
            },
        ),
        mk(
            "Coll2",
            "RTX Collage demo 2, Reflections",
            MegakernelConfig {
                name: "Coll2".into(),
                scene: SceneKind::City {
                    width: 24,
                    depth: 8,
                    materials: 5,
                },
                bounces: 2,
                n_warps: 24,
                seed: 106,
                profiles: profiles(5, 106, (0, 1), (1, 1), 2, (14, 22), (1, 1), (8, 20), 1.0),
                common_ldg: 8,
                common_math: 20,
            },
        ),
        mk(
            "Ctrl",
            "Control, multiple RT effects (Northlight)",
            MegakernelConfig {
                name: "Ctrl".into(),
                scene: SceneKind::Soup {
                    triangles: 4000,
                    materials: 7,
                },
                bounces: 2,
                n_warps: 32,
                seed: 107,
                profiles: profiles(7, 107, (1, 1), (1, 2), 2, (12, 20), (1, 1), (16, 32), 0.4),
                common_ldg: 2,
                common_math: 16,
            },
        ),
        mk(
            "DDGI",
            "Dynamic Diffuse GI, Greek Villa demo",
            MegakernelConfig {
                name: "DDGI".into(),
                // Deep scene → traversal-heavy (the Amdahl component).
                scene: SceneKind::Soup {
                    triangles: 12000,
                    materials: 5,
                },
                bounces: 3,
                n_warps: 20,
                seed: 108,
                profiles: profiles(5, 108, (0, 1), (1, 1), 2, (16, 26), (1, 1), (12, 24), 1.0),
                common_ldg: 2,
                common_math: 20,
            },
        ),
        mk(
            "MC",
            "Minecraft, multiple RT effects",
            MegakernelConfig {
                name: "MC".into(),
                scene: SceneKind::Soup {
                    triangles: 2500,
                    materials: 12,
                },
                bounces: 2,
                n_warps: 18,
                seed: 109,
                profiles: profiles(12, 109, (1, 1), (1, 1), 1, (12, 18), (1, 1), (16, 40), 0.35),
                common_ldg: 1,
                common_math: 14,
            },
        ),
        mk(
            "MW",
            "Mechwarrior 5, Reflections (Unreal Engine 4)",
            MegakernelConfig {
                name: "MW".into(),
                scene: SceneKind::Soup {
                    triangles: 4500,
                    materials: 6,
                },
                bounces: 2,
                n_warps: 28,
                seed: 110,
                profiles: profiles(6, 110, (1, 1), (2, 2), 2, (12, 20), (1, 1), (12, 32), 1.0),
                common_ldg: 6,
                common_math: 24,
            },
        ),
    ]
}

/// Looks up a suite trace by name (case-insensitive).
pub fn trace_by_name(name: &str) -> Option<TraceSpec> {
    suite()
        .into_iter()
        .find(|t| t.name.eq_ignore_ascii_case(name))
}

/// The suite with every workload **built once per process** and shared.
///
/// [`TraceSpec::build`] traces every thread's rays through a freshly
/// constructed BVH, which costs milliseconds per trace — cheap for one
/// figure, wasteful when a dozen experiments each rebuild the same ten
/// scenes. The workloads are immutable after construction, so experiments
/// (and the worker threads of a parallel sweep) share them through
/// `Arc<Workload>` instead of rebuilding.
pub fn built_suite() -> &'static [(TraceSpec, Arc<Workload>)] {
    static BUILT: OnceLock<Vec<(TraceSpec, Arc<Workload>)>> = OnceLock::new();
    BUILT.get_or_init(|| {
        suite()
            .into_iter()
            .map(|t| {
                let wl = Arc::new(t.build());
                (t, wl)
            })
            .collect()
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn suite_has_table_2_entries() {
        let s = suite();
        assert_eq!(s.len(), 10);
        let names: Vec<_> = s.iter().map(|t| t.name).collect();
        assert_eq!(
            names,
            vec!["AV1", "AV2", "BFV1", "BFV2", "Coll1", "Coll2", "Ctrl", "DDGI", "MC", "MW"]
        );
    }

    #[test]
    fn lookup_by_name() {
        assert!(trace_by_name("bfv1").is_some());
        assert!(trace_by_name("nope").is_none());
    }

    #[test]
    fn every_trace_builds() {
        for t in suite() {
            let wl = t.build();
            assert!(wl.program.len() > 50, "{} program too small", t.name);
            assert!(!wl.rt_trace.is_empty(), "{} has no rays", t.name);
        }
    }
}
