//! The CUDA microbenchmark of the paper's Figure 11.
//!
//! Each warp's lanes compute `subwarpid = lane / SUBWARP_SIZE` and switch on
//! it, splintering the warp into `32 / SUBWARP_SIZE` subwarps. Every case
//! calls the equivalent of `gen_ld_to_use_stalls`: a serial reduction whose
//! loads walk a private, never-revisited region — every load is a
//! compulsory L1D miss and every use is a load-to-use stall. An outer loop
//! re-synchronizes the warp each iteration (`__syncwarp()` → `BSYNC`) and
//! advances the region so misses stay compulsory.
//!
//! Each case body is padded with unique filler instructions so the total
//! instruction footprint scales with the divergence factor — at 32-way the
//! bodies overflow the 16 KB L0 instruction cache, reproducing the
//! fetch-thrashing taper of Table III.

use subwarp_core::{InitValue, Workload, WARP_SIZE};
use subwarp_isa::{Barrier, CmpOp, Operand, Pred, ProgramBuilder, Reg, Scoreboard};

/// Tunables for [`microbenchmark_with`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MicroConfig {
    /// Lanes per subwarp (the paper's `SUBWARP_SIZE`): a power of two in
    /// `1..=32`. Divergence factor is `32 / subwarp_size`.
    pub subwarp_size: usize,
    /// Outer-loop trip count (`ITERATIONS`).
    pub iterations: u32,
    /// Serial, dependent loads per case body per iteration.
    pub loads_per_iter: usize,
    /// Unique filler instructions appended to each case body (controls the
    /// per-divergence-factor instruction footprint).
    pub body_pad: usize,
    /// Warps launched (the paper isolates subwarp behaviour with low
    /// occupancy; one warp per processing block).
    pub n_warps: usize,
}

impl Default for MicroConfig {
    fn default() -> Self {
        // Calibrated against Table III: with these defaults (and ≥16
        // iterations) the speedup curve lands at ~1.97/3.9/7.6/13.2/11.6
        // versus the paper's 1.98/3.95/7.84/15.22/12.66, including the
        // 32-way fetch-thrash inversion.
        MicroConfig {
            subwarp_size: 16,
            iterations: 4,
            loads_per_iter: 8,
            body_pad: 48,
            n_warps: 4,
        }
    }
}

/// Builds the Figure 11 microbenchmark with `subwarp_size` lanes per
/// subwarp and the given outer-loop `iterations` (other parameters default).
///
/// # Panics
/// Panics if `subwarp_size` is not a power of two in `1..=32`.
pub fn microbenchmark(subwarp_size: usize, iterations: u32) -> Workload {
    microbenchmark_with(MicroConfig {
        subwarp_size,
        iterations,
        ..MicroConfig::default()
    })
}

/// Builds the microbenchmark from a full [`MicroConfig`].
///
/// # Panics
/// Panics if `subwarp_size` is not a power of two in `1..=32`.
pub fn microbenchmark_with(cfg: MicroConfig) -> Workload {
    assert!(
        cfg.subwarp_size.is_power_of_two() && (1..=WARP_SIZE).contains(&cfg.subwarp_size),
        "subwarp_size must be a power of two in 1..=32, got {}",
        cfg.subwarp_size
    );
    let n_subwarps = WARP_SIZE / cfg.subwarp_size;
    let shift = cfg.subwarp_size.trailing_zeros() as i64;

    // Address layout: never-revisited, so every load is a compulsory miss.
    const LINE: i64 = 128;
    const SUBWARP_REGION: i64 = 1 << 20;
    const WARP_REGION: i64 = 1 << 26;
    const BASE: i64 = 1 << 32;

    // Registers: R0 = lane, R3 = warp id (init); R1 = subwarpid,
    // R2 = address cursor, R4 = load value, R5 = accumulator,
    // R9 = iteration counter.
    let mut b = ProgramBuilder::new();
    let loop_ = b.label("loop");
    let sync = b.label("sync");
    let case_labels: Vec<_> = (0..n_subwarps.saturating_sub(1))
        .map(|k| b.label(&format!("case{k}")))
        .collect();

    b.shr(Reg(1), Reg(0), Operand::imm(shift));
    b.imad(
        Reg(2),
        Reg(1),
        Operand::imm(SUBWARP_REGION),
        Operand::imm(BASE),
    );
    b.imad(Reg(2), Reg(3), Operand::imm(WARP_REGION), Operand::reg(2));
    b.mov(Reg(9), Operand::imm(cfg.iterations as i64));
    b.place(loop_);
    b.bssy(Barrier(0), sync);
    // switch (subwarpid): a compare-and-branch chain; the last subwarp falls
    // through into its body.
    for (k, label) in case_labels.iter().enumerate() {
        b.isetp(Pred(0), Reg(1), Operand::imm(k as i64), CmpOp::Eq);
        b.bra(*label).pred(Pred(0), false);
    }
    let emit_case = |b: &mut ProgramBuilder, k: usize, sync| {
        let sb = Scoreboard((k % 8) as u8);
        // Filler math is interleaved between the load/use pairs (as real
        // shader code is), so each reduction step executes from a different
        // instruction line — the footprint pressure that thrashes the L0
        // instruction cache at high divergence factors.
        let pad_per_load = cfg.body_pad / cfg.loads_per_iter.max(1);
        let mut pad_left = cfg.body_pad;
        for j in 0..cfg.loads_per_iter {
            b.ldg(Reg(4), Reg(2), j as i64 * LINE).wr_sb(sb);
            let chunk = if j + 1 == cfg.loads_per_iter {
                pad_left
            } else {
                pad_per_load
            };
            for p in 0..chunk.min(pad_left) {
                b.fmul(Reg(6), Reg(5), Operand::fimm(1.0 + p as f32 * 1e-7));
            }
            pad_left = pad_left.saturating_sub(chunk);
            // The reduction's serial use: a guaranteed load-to-use stall.
            b.fadd(Reg(5), Reg(4), Operand::reg(5)).req_sb(sb);
        }
        b.bra(sync);
    };
    // Last subwarp's body first (the chain's fall-through), then the rest.
    emit_case(&mut b, n_subwarps - 1, sync);
    for (k, label) in case_labels.iter().enumerate() {
        b.place(*label);
        emit_case(&mut b, k, sync);
    }
    b.place(sync);
    b.bsync(Barrier(0));
    // Advance the cursor past this iteration's lines: misses stay
    // compulsory (`subwarp_offset += L2_CACHE_LINE` in Figure 11).
    b.iadd(
        Reg(2),
        Reg(2),
        Operand::imm(cfg.loads_per_iter as i64 * LINE),
    );
    b.iadd(Reg(9), Reg(9), Operand::imm(-1));
    b.isetp(Pred(1), Reg(9), Operand::imm(0), CmpOp::Gt);
    b.bra(loop_).pred(Pred(1), false);
    b.exit();

    let program = b.build().expect("microbenchmark program is valid");
    Workload::new(
        format!("micro/subwarp{}", cfg.subwarp_size),
        program,
        cfg.n_warps,
    )
    .with_init(Reg(0), InitValue::LaneId)
    .with_init(Reg(3), InitValue::WarpId)
    .with_data_seed(0x5eed)
}

#[cfg(test)]
mod tests {
    use super::*;
    use subwarp_core::{SelectPolicy, SiConfig, Simulator, SmConfig};

    #[test]
    fn footprint_scales_with_divergence_factor() {
        let f2 = microbenchmark(16, 1).program.footprint_bytes();
        let f32way = microbenchmark(1, 1).program.footprint_bytes();
        assert!(f32way > 8 * f2, "32 case bodies dwarf 2: {f32way} vs {f2}");
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn bad_subwarp_size_panics() {
        microbenchmark(3, 1);
    }

    #[test]
    fn two_way_micro_speeds_up_near_2x() {
        let wl = microbenchmark(16, 2);
        let base = Simulator::new(SmConfig::turing_like(), SiConfig::disabled())
            .run(&wl)
            .unwrap();
        let si = Simulator::new(
            SmConfig::turing_like(),
            SiConfig::sos(SelectPolicy::AnyStalled),
        )
        .run(&wl)
        .unwrap();
        let speedup = si.speedup_vs(&base);
        assert!(
            (1.5..=2.3).contains(&speedup),
            "2-way divergence should give ~2x, got {speedup:.2} ({} vs {})",
            base.cycles,
            si.cycles
        );
    }

    #[test]
    fn four_way_beats_two_way() {
        let base2 = microbenchmark(16, 2);
        let base4 = microbenchmark(8, 2);
        let sim_b = Simulator::new(SmConfig::turing_like(), SiConfig::disabled());
        let sim_si = Simulator::new(
            SmConfig::turing_like(),
            SiConfig::sos(SelectPolicy::AnyStalled),
        );
        let s2 = sim_si
            .run(&base2)
            .unwrap()
            .speedup_vs(&sim_b.run(&base2).unwrap());
        let s4 = sim_si
            .run(&base4)
            .unwrap()
            .speedup_vs(&sim_b.run(&base4).unwrap());
        assert!(s4 > s2 + 0.5, "4-way {s4:.2} should beat 2-way {s2:.2}");
    }

    #[test]
    fn baseline_serializes_subwarps() {
        // Baseline time should scale roughly with divergence factor.
        let sim = Simulator::new(SmConfig::turing_like(), SiConfig::disabled());
        let c2 = sim.run(&microbenchmark(16, 2)).unwrap().cycles;
        let c8 = sim.run(&microbenchmark(4, 2)).unwrap().cycles;
        assert!(
            c8 > 3 * c2,
            "8-way baseline {c8} should be ~4x the 2-way {c2}"
        );
    }
}
