#![warn(missing_docs)]

//! # subwarp-workloads — the paper's benchmark programs
//!
//! Three families of simulator inputs, mirroring the paper's §IV-B / §V:
//!
//! - [`microbenchmark`] — the CUDA microbenchmark of Figure 11: a warp
//!   splinters into 2–32 subwarps via a switch on `subwarpid`, and each
//!   subwarp performs a reduction with guaranteed compulsory-miss
//!   load-to-use stalls. Drives Table III.
//! - [`toy`](figure9_workload) — the Figure 9 divergent if-then-else, used
//!   for the Figure 10 state-machine walkthroughs.
//! - [`compute_suite`] — classic non-raytracing compute kernels (SAXPY,
//!   stencil, tiled matmul, reduction, histogram, branchy math) for the
//!   paper's §VI negative result: SI does not help ordinary compute.
//! - [`megakernel`](MegakernelConfig) — a raytracing megakernel generator:
//!   rays are traced through a real BVH (`subwarp-rt`) at build time, hits
//!   are bucketed into shaders, and the emitted program dispatches through a
//!   divergent switch exactly as the paper's Figure 1/5 describe.
//!   [`suite()`] instantiates the ten named application traces of Table II.
//!
//! ```
//! use subwarp_workloads::{microbenchmark, suite};
//!
//! let micro = microbenchmark(16, 2); // 16-lane subwarps, 2 iterations
//! assert_eq!(micro.name, "micro/subwarp16");
//! assert_eq!(suite().len(), 10);
//! ```

mod compute;
mod megakernel;
mod micro;
mod suite;
mod toy;

pub use compute::{
    branchy_math, compute_suite, divergent_loads_full_occupancy, histogram, matmul_tile, reduction,
    saxpy, stencil,
};
pub use megakernel::{MegakernelConfig, SceneKind, ShaderProfile};
pub use micro::{microbenchmark, microbenchmark_with, MicroConfig};
pub use suite::{built_suite, suite, trace_by_name, TraceSpec};
pub use toy::{figure9_program, figure9_workload};
