//! Raytracing megakernel generation.
//!
//! This reproduces the paper's workload structure end to end (Figures 1 and
//! 5): a warp of initially convergent threads casts rays (`TraceRay` → RT
//! core), splinters into subwarps at a switch over the hit shader, runs
//! divergent shader bodies full of texture/global loads with load-to-use
//! stalls, reconverges at a `BSYNC`, and loops for secondary bounces.
//!
//! Divergence is *earned*, not synthesized: at build time every thread's
//! rays are actually traced through a BVH over a procedural scene, and the
//! material of the struck triangle selects the shader. Scene choice
//! therefore controls the warp's hit entropy — the knob behind the
//! per-trace differences in the paper's Figure 3.

use subwarp_core::{InitValue, RayResult, RtTrace, Workload, WARP_SIZE};
use subwarp_isa::{Barrier, CmpOp, Operand, Pred, ProgramBuilder, Reg, Scoreboard, StallHint};
use subwarp_prng::SmallRng;
use subwarp_rt::{Bvh, Ray, Scene, Vec3};

/// Which procedural scene the megakernel's rays fly through.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SceneKind {
    /// Random triangle soup: uniform material assignment → high hit entropy
    /// → warps splinter into many subwarps (BFV-like traces).
    Soup {
        /// Triangle count (BVH depth scales with it).
        triangles: usize,
        /// Distinct materials (= hit shaders).
        materials: u32,
    },
    /// Structured grid city: materials assigned by column → coherent camera
    /// rays mostly agree → low hit entropy (Coll-like traces).
    City {
        /// Grid width (buildings).
        width: usize,
        /// Grid depth (rows).
        depth: usize,
        /// Distinct materials.
        materials: u32,
    },
    /// A Cornell-box-like enclosure (7 materials): wall-dominated hits with
    /// moderate entropy from two inner blocks.
    Cornell,
}

impl SceneKind {
    fn build(&self, seed: u64) -> Scene {
        match *self {
            SceneKind::Soup {
                triangles,
                materials,
            } => Scene::soup_with_materials(triangles, materials, seed),
            SceneKind::City {
                width,
                depth,
                materials,
            } => Scene::grid_city(width, depth, materials, seed),
            SceneKind::Cornell => Scene::cornell_like(),
        }
    }

    fn materials(&self) -> u32 {
        match *self {
            SceneKind::Soup { materials, .. } | SceneKind::City { materials, .. } => materials,
            SceneKind::Cornell => 7,
        }
    }
}

/// Instruction mix of one shader body (one switch case).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ShaderProfile {
    /// Texture fetches per inner-loop trip (TEX writeback path).
    pub tex_ops: usize,
    /// Global loads per inner-loop trip (LSU writeback path).
    pub ldg_ops: usize,
    /// Of all memory ops per trip, how many target a small hot region that
    /// stays L1D-resident (cache hits — stalls they cause are short).
    pub hot_loads: usize,
    /// Dependent FMA chain length between memory ops (latency slack).
    pub math_ops: usize,
    /// Inner-loop trip count (uniform per subwarp — non-divergent).
    pub trips: u32,
    /// Unique trailing filler instructions (instruction-footprint knob).
    pub code_pad: usize,
}

impl ShaderProfile {
    /// A minimal miss-shader profile: a couple of math ops, no memory.
    pub fn miss() -> ShaderProfile {
        ShaderProfile {
            tex_ops: 0,
            ldg_ops: 0,
            hot_loads: 0,
            math_ops: 4,
            trips: 1,
            code_pad: 8,
        }
    }
}

/// Full megakernel specification; [`MegakernelConfig::build`] produces the
/// simulator [`Workload`].
#[derive(Debug, Clone, PartialEq)]
pub struct MegakernelConfig {
    /// Trace name (reports).
    pub name: String,
    /// Scene the rays traverse.
    pub scene: SceneKind,
    /// Raytracing rounds (primary + `bounces - 1` secondary casts).
    pub bounces: u32,
    /// Warps launched (occupancy knob; raytracing kernels run warp-starved).
    pub n_warps: usize,
    /// Scene/scatter seed.
    pub seed: u64,
    /// Shader bodies: index `s` handles material `s`; index `materials()`
    /// handles misses. Length must be `materials() + 1`.
    pub profiles: Vec<ShaderProfile>,
    /// Convergent (pre-switch) global loads per bounce — stalls these cause
    /// are *not* in divergent code (the Coll1/Coll2 signature in Figure 3).
    pub common_ldg: usize,
    /// Convergent math per bounce.
    pub common_math: usize,
}

impl MegakernelConfig {
    /// Builds the workload: traces every thread's rays through the BVH,
    /// records the RT trace, and emits the megakernel program.
    ///
    /// # Panics
    /// Panics if `profiles.len() != materials + 1`.
    pub fn build(&self) -> Workload {
        let n_materials = self.scene.materials();
        let n_shaders = n_materials + 1; // + miss shader
        assert_eq!(
            self.profiles.len(),
            n_shaders as usize,
            "need one profile per material plus one for the miss shader"
        );
        let rt_trace = self.trace_rays();
        let program = self.emit(n_shaders);
        Workload::new(self.name.clone(), program, self.n_warps)
            .with_init(Reg(0), InitValue::GlobalTid)
            .with_rt_trace(rt_trace)
            .with_data_seed(self.seed)
    }

    /// Casts and traces every thread's rays, producing the RT-core trace
    /// (ray id `gtid + bounce * total_threads`).
    fn trace_rays(&self) -> RtTrace {
        let scene = self.scene.build(self.seed);
        let bvh = Bvh::build(&scene);
        let n_materials = self.scene.materials();
        let miss_shader = n_materials;
        let total = self.n_warps * WARP_SIZE;
        let vp_w = 64u32;
        let vp_h = (total as u32).div_ceil(vp_w);

        let mut results = vec![
            RayResult {
                shader: miss_shader,
                nodes: 2
            };
            total * self.bounces as usize
        ];
        let mut rng = SmallRng::seed_from_u64(self.seed ^ 0xABCD);
        for gtid in 0..total {
            let mut ray = Scene::camera_ray(gtid as u32 % vp_w, gtid as u32 / vp_w, vp_w, vp_h);
            let mut alive = true;
            for bounce in 0..self.bounces as usize {
                let idx = gtid + bounce * total;
                if !alive {
                    // Escaped rays keep invoking the miss shader cheaply.
                    results[idx] = RayResult {
                        shader: miss_shader,
                        nodes: 2,
                    };
                    continue;
                }
                let t = bvh.traverse(&ray);
                match t.hit {
                    Some(hit) => {
                        results[idx] = RayResult {
                            shader: hit.material,
                            nodes: t.nodes_visited,
                        };
                        // Scatter a secondary ray from the hit point.
                        let p = ray.at(hit.t);
                        let dir = Vec3::new(
                            rng.gen_range(-1.0..1.0f32),
                            rng.gen_range(-1.0..1.0f32),
                            rng.gen_range(-1.0..1.0f32),
                        );
                        let dir = if dir.length() < 1e-3 {
                            Vec3::new(0.0, 1.0, 0.0)
                        } else {
                            dir
                        };
                        ray = Ray::new(p + dir.normalized() * 1e-3, dir);
                    }
                    None => {
                        results[idx] = RayResult {
                            shader: miss_shader,
                            nodes: t.nodes_visited,
                        };
                        alive = false;
                    }
                }
            }
        }
        RtTrace::from_results(
            results,
            RayResult {
                shader: miss_shader,
                nodes: 2,
            },
        )
    }

    /// Emits the megakernel program.
    ///
    /// Register map: `R0` gtid (init) · `R60` ray id · `R61` bounce counter
    /// · `R62` traversal result · `R40..` shader scratch · `R30..` common
    /// section scratch.
    fn emit(&self, n_shaders: u32) -> subwarp_isa::Program {
        const LINE: i64 = 128;
        const STREAM_BASE: i64 = 1 << 33;
        const HOT_BASE: i64 = 1 << 30;
        const HOT_REGION: i64 = 4096;
        const COMMON_BASE: i64 = 1 << 35;
        let total = (self.n_warps * WARP_SIZE) as i64;

        let mut b = ProgramBuilder::new();
        let mk_loop = b.label("megakernel_loop");
        let post = b.label("post_switch");
        let shader_labels: Vec<_> = (0..n_shaders.saturating_sub(1))
            .map(|s| b.label(&format!("shader{s}")))
            .collect();

        b.iadd(Reg(60), Reg(0), Operand::imm(0)); // ray id = gtid
        b.mov(Reg(61), Operand::imm(self.bounces as i64));
        b.mov(Reg(44), Operand::imm(0)); // radiance accumulator
        b.place(mk_loop);
        // Cast the ray; the RT core traverses asynchronously (§II-B).
        b.trace_ray(Reg(62), Reg(60)).wr_sb(Scoreboard(7));
        // Convergent work overlaps the traversal.
        if self.common_ldg > 0 {
            // Per-thread streaming region keyed by ray id: compulsory misses
            // in *convergent* code.
            b.imad(
                Reg(30),
                Reg(60),
                Operand::imm(1024),
                Operand::imm(COMMON_BASE),
            );
            for j in 0..self.common_ldg {
                b.ldg(Reg(31), Reg(30), j as i64 * LINE)
                    .wr_sb(Scoreboard(6));
                b.fadd(Reg(32), Reg(31), Operand::reg(32))
                    .req_sb(Scoreboard(6));
            }
        }
        for _ in 0..self.common_math {
            b.ffma(Reg(33), Reg(32), Operand::fimm(0.5), Operand::fimm(0.25));
        }
        // Dispatch on the hit shader — the divergence point of Figure 5.
        // Each dispatch branch carries a stall-probability hint (§VI future
        // work): the side estimated to expose more load-to-use latency
        // should run *first* so its stalls overlap the other side's
        // execution. The estimate scores each profile by the latency its
        // math slack cannot cover (latencies mirror the Turing-like
        // defaults — the hint models a profiling compiler's guess, not the
        // exact machine). Hints are free metadata; only
        // `DivergeOrder::Hinted` consumes them.
        let stall_score = |p: &ShaderProfile| -> u64 {
            let total = p.tex_ops + p.ldg_ops;
            let hot = p.hot_loads.min(total);
            let (cold, hot_tex) = (total - hot, p.tex_ops.min(hot));
            let hot_ldg = hot - hot_tex;
            let exposed = |n: usize, lat: u64| n as u64 * lat.saturating_sub(p.math_ops as u64);
            p.trips as u64 * (exposed(cold, 600) + exposed(hot_tex, 50) + exposed(hot_ldg, 30))
        };
        b.bssy(Barrier(0), post);
        for (s, label) in shader_labels.iter().enumerate() {
            let cmp = b.isetp(Pred(0), Reg(62), Operand::imm(s as i64), CmpOp::Eq);
            if s == 0 {
                // First use of the traversal result waits on its scoreboard.
                cmp.req_sb(Scoreboard(7));
            }
            let here = stall_score(&self.profiles[s]);
            let later_best = self.profiles[s + 1..]
                .iter()
                .map(stall_score)
                .max()
                .unwrap_or(0);
            // Hint only when one side clearly dominates (≥1.25×) AND the
            // dominant side's exposure is miss-sized (≥100 cycles): a
            // profiling compiler cannot distinguish near-tied paths, and
            // hit-latency differences are within profiling noise. An
            // over-confident hint is worse than admitting ignorance —
            // unhinted branches randomize per warp, recovering order
            // diversity.
            let hint = if here >= 100 && 4 * here >= 5 * later_best {
                Some(StallHint::TakenStalls)
            } else if later_best >= 100 && 4 * later_best >= 5 * here {
                Some(StallHint::FallthroughStalls)
            } else {
                None
            };
            let br = b.bra(*label).pred(Pred(0), false);
            if let Some(h) = hint {
                br.hint(h);
            }
        }
        // Fall-through: the last shader (the miss shader).
        self.emit_shader(
            &mut b,
            (n_shaders - 1) as usize,
            post,
            STREAM_BASE,
            HOT_BASE,
            HOT_REGION,
        );
        for (s, label) in shader_labels.iter().enumerate() {
            b.place(*label);
            self.emit_shader(&mut b, s, post, STREAM_BASE, HOT_BASE, HOT_REGION);
        }
        b.place(post);
        b.bsync(Barrier(0));
        // Next bounce: ray ids advance by the grid size.
        b.iadd(Reg(60), Reg(60), Operand::imm(total));
        b.iadd(Reg(61), Reg(61), Operand::imm(-1));
        b.isetp(Pred(1), Reg(61), Operand::imm(0), CmpOp::Gt);
        b.bra(mk_loop).pred(Pred(1), false);
        // Write the result out and retire.
        b.imad(Reg(34), Reg(0), Operand::imm(8), Operand::imm(1 << 28));
        b.stg(Reg(44), Reg(34), 0);
        b.exit();
        b.build().expect("megakernel program is valid")
    }

    /// Emits one shader body (one switch case) from its profile.
    fn emit_shader(
        &self,
        b: &mut ProgramBuilder,
        s: usize,
        post: subwarp_isa::Label,
        stream_base: i64,
        hot_base: i64,
        hot_region: i64,
    ) {
        const LINE: i64 = 128;
        let p = &self.profiles[s];
        let region = 1i64 << 22;
        // Streaming cursor: per-thread, per-shader, per-bounce fresh lines.
        b.imad(
            Reg(50),
            Reg(60),
            Operand::imm(2048),
            Operand::imm(stream_base + s as i64 * region),
        );
        // Hot base: shared by all lanes → L1D-resident after warm-up.
        b.mov(Reg(51), Operand::imm(hot_base + s as i64 * hot_region));
        if p.trips > 1 {
            b.mov(Reg(48), Operand::imm(p.trips as i64));
        }
        let loop_top = b.label(&format!("shader{s}_loop"));
        b.place(loop_top);
        let mut op_idx = 0usize;
        let total_mem = p.tex_ops + p.ldg_ops;
        let mut emit_mem = |b: &mut ProgramBuilder, tex: bool, j: usize| {
            let sb = Scoreboard((op_idx % 6) as u8);
            let hot = op_idx < p.hot_loads;
            let (base, off) = if hot {
                (Reg(51), (op_idx as i64 * LINE) % hot_region)
            } else {
                (Reg(50), j as i64 * LINE)
            };
            if tex {
                // TLD takes the address directly; fold the offset in.
                b.iadd(Reg(52), base, Operand::imm(off));
                b.tld(Reg(40), Reg(52)).wr_sb(sb);
            } else {
                b.ldg(Reg(40), base, off).wr_sb(sb);
            }
            for m in 0..p.math_ops {
                b.ffma(
                    Reg(45),
                    Reg(45),
                    Operand::fimm(1.0 + m as f32 * 1e-6),
                    Operand::fimm(0.5),
                );
            }
            // The load-to-use point.
            b.fadd(Reg(44), Reg(40), Operand::reg(44)).req_sb(sb);
            op_idx += 1;
        };
        for j in 0..p.tex_ops {
            emit_mem(b, true, j);
        }
        for j in 0..p.ldg_ops {
            emit_mem(b, false, p.tex_ops + j);
        }

        if p.trips > 1 {
            // Advance streaming past this trip's lines and loop back
            // (trip count is uniform per subwarp: no divergence, no barrier
            // needed).
            b.iadd(
                Reg(50),
                Reg(50),
                Operand::imm((total_mem as i64 + 1) * LINE),
            );
            b.iadd(Reg(48), Reg(48), Operand::imm(-1));
            b.isetp(Pred(2), Reg(48), Operand::imm(0), CmpOp::Gt);
            b.bra(loop_top).pred(Pred(2), false);
        }
        for k in 0..p.code_pad {
            b.fmul(Reg(46), Reg(45), Operand::fimm(1.0 + k as f32 * 1e-7));
        }
        b.bra(post);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use subwarp_core::{SiConfig, Simulator, SmConfig};

    fn small_config() -> MegakernelConfig {
        let scene = SceneKind::Soup {
            triangles: 512,
            materials: 4,
        };
        MegakernelConfig {
            name: "test-mk".into(),
            scene,
            bounces: 2,
            n_warps: 4,
            seed: 42,
            profiles: (0..4)
                .map(|i| ShaderProfile {
                    tex_ops: 1 + i % 2,
                    ldg_ops: 1,
                    hot_loads: 0,
                    math_ops: 2,
                    trips: 1,
                    code_pad: 8,
                })
                .chain([ShaderProfile::miss()])
                .collect(),
            common_ldg: 1,
            common_math: 4,
        }
    }

    #[test]
    fn build_produces_runnable_workload() {
        let wl = small_config().build();
        assert_eq!(wl.rt_trace.len(), 4 * 32 * 2);
        let stats = Simulator::new(SmConfig::turing_like(), SiConfig::disabled())
            .run(&wl)
            .unwrap();
        assert!(stats.instructions > 0);
        assert!(stats.rt_traversals > 0);
        assert!(stats.divergences > 0, "soup scene must splinter warps");
        assert!(stats.reconvergences > 0);
    }

    #[test]
    fn si_helps_the_divergent_megakernel() {
        let wl = small_config().build();
        let base = Simulator::new(SmConfig::turing_like(), SiConfig::disabled())
            .run(&wl)
            .unwrap();
        let si = Simulator::new(SmConfig::turing_like(), SiConfig::best())
            .run(&wl)
            .unwrap();
        assert!(
            si.cycles <= base.cycles,
            "SI should not slow the megakernel: {} vs {}",
            si.cycles,
            base.cycles
        );
        assert!(
            si.subwarp_stalls > 0,
            "divergent stalls should trigger demotions"
        );
    }

    #[test]
    #[should_panic(expected = "one profile per material")]
    fn wrong_profile_count_panics() {
        let mut c = small_config();
        c.profiles.pop();
        c.build();
    }

    #[test]
    fn deterministic_build() {
        let a = small_config().build();
        let b = small_config().build();
        assert_eq!(a, b);
    }
}
