//! Calibration utility: sweeps the Figure-11 microbenchmark's body size,
//! iteration count, load count, warp count, and fetch latency to place the
//! Table III curve (args: pad iters loads warps ifetch).
use subwarp_core::{SelectPolicy, SiConfig, Simulator, SmConfig};
use subwarp_workloads::{microbenchmark_with, MicroConfig};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let pad: usize = args.first().map(|s| s.parse().unwrap()).unwrap_or(24);
    let iters: u32 = args.get(1).map(|s| s.parse().unwrap()).unwrap_or(16);
    let loads: usize = args.get(2).map(|s| s.parse().unwrap()).unwrap_or(4);
    let warps: usize = args.get(3).map(|s| s.parse().unwrap()).unwrap_or(4);
    let ifetch: u64 = args.get(4).map(|s| s.parse().unwrap()).unwrap_or(20);
    let mut sm = SmConfig::turing_like();
    sm.ifetch_l1_latency = ifetch;
    let base_sim = Simulator::new(sm.clone(), SiConfig::disabled());
    let si_sim = Simulator::new(sm, SiConfig::sos(SelectPolicy::AnyStalled));
    println!("pad={pad} iters={iters} loads={loads} warps={warps}");
    for ss in [16usize, 8, 4, 2, 1] {
        let wl = microbenchmark_with(MicroConfig {
            subwarp_size: ss,
            iterations: iters,
            loads_per_iter: loads,
            body_pad: pad,
            n_warps: warps,
        });
        let b = base_sim.run(&wl).unwrap();
        let s = si_sim.run(&wl).unwrap();
        println!(
            "  div {:2}: speedup {:5.2}  (base {:8} si {:8})  si-fetch {:4.1}%  si-l2u {:4.1}%",
            32 / ss,
            b.cycles as f64 / s.cycles as f64,
            b.cycles,
            s.cycles,
            s.exposed_fetch_stalls as f64 / s.cycles as f64 * 100.0,
            s.exposed_load_stalls as f64 / s.cycles as f64 * 100.0
        );
    }
}
