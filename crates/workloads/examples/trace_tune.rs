//! Calibration utility: sweeps one suite trace's occupancy and bounce
//! count (arg: trace name).
use subwarp_core::{SiConfig, Simulator, SmConfig};
use subwarp_workloads::trace_by_name;

fn main() {
    let name = std::env::args().nth(1).unwrap_or_else(|| "Ctrl".into());
    let t = trace_by_name(&name).unwrap();
    let base_sim = Simulator::new(SmConfig::turing_like(), SiConfig::disabled());
    let si_sim = Simulator::new(SmConfig::turing_like(), SiConfig::best());
    for warps in [12, 16, 20, 24, 28, 32] {
        for bounces in [2u32, 3] {
            let mut c = t.config.clone();
            c.n_warps = warps;
            c.bounces = bounces;
            let wl = c.build();
            let b = base_sim.run(&wl).unwrap();
            let s = si_sim.run(&wl).unwrap();
            println!(
                "warps {warps:2} bounces {bounces}: spd {:5.1}%  l2u {:4.1}% div {:4.1}%",
                (b.cycles as f64 / s.cycles as f64 - 1.0) * 100.0,
                b.exposed_ratio() * 100.0,
                b.exposed_divergent_ratio() * 100.0
            );
        }
    }
}
