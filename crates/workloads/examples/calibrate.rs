//! Calibration utility: prints each suite trace's Figure-3 position and
//! best-config speedup — the table used to place the ten traces against
//! the paper (see DESIGN.md / EXPERIMENTS.md).
use subwarp_core::{SelectPolicy, SiConfig, Simulator, SmConfig};
use subwarp_workloads::suite;

fn main() {
    println!(
        "{:6} {:>9} {:>7} {:>7} {:>7} {:>7} {:>7} {:>8} {:>8}",
        "trace", "cycles", "l2u%", "div%", "trav%", "fetch%", "spd%", "stalls", "switches"
    );
    let base_sim = Simulator::new(SmConfig::turing_like(), SiConfig::disabled());
    let si_sim = Simulator::new(
        SmConfig::turing_like(),
        SiConfig::both(SelectPolicy::HalfStalled),
    );
    let mut mean = 0.0;
    for t in suite() {
        let wl = t.build();
        let b = base_sim.run(&wl).unwrap();
        let s = si_sim.run(&wl).unwrap();
        let spd = (b.cycles as f64 / s.cycles as f64 - 1.0) * 100.0;
        mean += spd;
        println!(
            "{:6} {:>9} {:>6.1}% {:>6.1}% {:>6.1}% {:>6.1}% {:>6.1}% {:>8} {:>8}",
            t.name,
            b.cycles,
            b.exposed_ratio() * 100.0,
            b.exposed_divergent_ratio() * 100.0,
            b.exposed_traversal_stalls as f64 / b.cycles as f64 * 100.0,
            b.exposed_fetch_stalls as f64 / b.cycles as f64 * 100.0,
            spd,
            s.subwarp_stalls,
            s.subwarp_switches
        );
    }
    println!("mean speedup: {:.1}%", mean / 10.0);
}
