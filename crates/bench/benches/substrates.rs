//! Substrate micro-benchmarks: BVH build/traversal, cache lookups, the
//! service-unit completion queue, and megakernel workload generation — the
//! building blocks every figure run sits on.

use criterion::{criterion_group, criterion_main, Criterion};
use std::time::Duration;
use subwarp_mem::{Cache, CacheConfig, ServiceUnit};
use subwarp_rt::{Bvh, Ray, Scene, Vec3};
use subwarp_workloads::trace_by_name;

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("substrates");
    g.sample_size(20);
    g.warm_up_time(Duration::from_millis(500));
    g.measurement_time(Duration::from_secs(2));

    let scene = Scene::random_soup(4096, 7);
    g.bench_function("bvh/build-4k-tris", |b| {
        b.iter(|| Bvh::build(&scene).node_count())
    });

    let bvh = Bvh::build(&scene);
    g.bench_function("bvh/traverse-1k-rays", |b| {
        b.iter(|| {
            let mut nodes = 0u64;
            for i in 0..1024u32 {
                let ray = Ray::new(
                    Vec3::new(0.0, 0.0, -10.0),
                    Vec3::new(
                        (i % 32) as f32 * 0.02 - 0.3,
                        (i / 32) as f32 * 0.02 - 0.3,
                        1.0,
                    ),
                );
                nodes += bvh.traverse(&ray).nodes_visited as u64;
            }
            nodes
        })
    });

    g.bench_function("cache/64k-accesses", |b| {
        b.iter(|| {
            let mut cache = Cache::new(CacheConfig::l1_data());
            let mut hits = 0u64;
            for i in 0..65_536u64 {
                if cache.access((i * 37) % (1 << 20)) == subwarp_mem::AccessKind::Hit {
                    hits += 1;
                }
            }
            hits
        })
    });

    g.bench_function("service-unit/16k-push-pop", |b| {
        b.iter(|| {
            let mut u = ServiceUnit::new();
            for i in 0..16_384u64 {
                u.push(i % 600, i);
            }
            let mut n = 0;
            for now in 0..600 {
                while u.pop_if_ready(now).is_some() {
                    n += 1;
                }
            }
            n
        })
    });

    g.bench_function("workload/build-BFV1", |b| {
        b.iter(|| {
            trace_by_name("BFV1")
                .expect("suite trace")
                .build()
                .program
                .len()
        })
    });

    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
