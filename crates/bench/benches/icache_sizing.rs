//! §V-C-4 bench: instruction-cache sizing (paper-upsized vs 4× smaller
//! shipping-GPU-like caches).
//!
//! Regenerate the full experiment with `cargo run --release -p subwarp-bench
//! --bin figures -- icache`.

use criterion::{criterion_group, criterion_main, Criterion};
use std::time::Duration;
use subwarp_core::{SiConfig, Simulator, SmConfig};
use subwarp_workloads::trace_by_name;

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("icache");
    g.sample_size(10);
    g.warm_up_time(Duration::from_millis(500));
    g.measurement_time(Duration::from_secs(2));
    let wl = trace_by_name("MC").expect("suite trace").build();
    for (label, sm) in [
        ("big", SmConfig::turing_like()),
        ("small", SmConfig::turing_like().with_small_icaches()),
    ] {
        let si = Simulator::new(sm, SiConfig::best());
        g.bench_function(format!("si/{label}"), |b| {
            b.iter(|| si.run(&wl).unwrap().cycles)
        });
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
