//! Table III bench: the Figure 11 microbenchmark at each divergence
//! factor, baseline vs Subwarp Interleaving.
//!
//! Regenerate the full table with `cargo run --release -p subwarp-bench
//! --bin figures -- table3`.

use criterion::{criterion_group, criterion_main, Criterion};
use std::time::Duration;
use subwarp_core::{SelectPolicy, SiConfig, Simulator, SmConfig};
use subwarp_workloads::microbenchmark;

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("table3");
    g.sample_size(10);
    g.warm_up_time(Duration::from_millis(500));
    g.measurement_time(Duration::from_secs(2));
    let base = Simulator::new(SmConfig::turing_like(), SiConfig::disabled());
    let si = Simulator::new(
        SmConfig::turing_like(),
        SiConfig::sos(SelectPolicy::AnyStalled),
    );
    for ss in [16usize, 4, 1] {
        let wl = microbenchmark(ss, 2);
        let div = 32 / ss;
        g.bench_function(format!("baseline/div{div}"), |b| {
            b.iter(|| base.run(&wl).unwrap().cycles)
        });
        g.bench_function(format!("si/div{div}"), |b| {
            b.iter(|| si.run(&wl).unwrap().cycles)
        });
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
