//! Figure 3 bench: baseline simulation of representative traces (the runs
//! whose exposed-stall counters produce the characterization figure).
//!
//! Regenerate the full figure with `cargo run --release -p subwarp-bench
//! --bin figures -- fig3`.

use criterion::{criterion_group, criterion_main, Criterion};
use std::time::Duration;
use subwarp_core::{SiConfig, Simulator, SmConfig};
use subwarp_workloads::trace_by_name;

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig3");
    g.sample_size(10);
    g.warm_up_time(Duration::from_millis(500));
    g.measurement_time(Duration::from_secs(2));
    let sim = Simulator::new(SmConfig::turing_like(), SiConfig::disabled());
    for name in ["AV1", "BFV1", "Coll1"] {
        let wl = trace_by_name(name).expect("suite trace").build();
        g.bench_function(format!("baseline/{name}"), |b| {
            b.iter(|| {
                let s = sim.run(&wl).unwrap();
                assert!(s.exposed_load_stalls > 0);
                s.cycles
            })
        });
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
