//! Figure 12 bench: the six SI trigger-policy configurations on the most
//! divergence-limited trace (BFV1).
//!
//! Regenerate the full figure with `cargo run --release -p subwarp-bench
//! --bin figures -- fig12a fig12b`.

use criterion::{criterion_group, criterion_main, Criterion};
use std::time::Duration;
use subwarp_bench::si_configs;
use subwarp_core::{SiConfig, Simulator, SmConfig};
use subwarp_workloads::trace_by_name;

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig12");
    g.sample_size(10);
    g.warm_up_time(Duration::from_millis(500));
    g.measurement_time(Duration::from_secs(2));
    let wl = trace_by_name("BFV1").expect("suite trace").build();
    g.bench_function("baseline/BFV1", |b| {
        let sim = Simulator::new(SmConfig::turing_like(), SiConfig::disabled());
        b.iter(|| sim.run(&wl).unwrap().cycles)
    });
    for (label, si) in si_configs() {
        let sim = Simulator::new(SmConfig::turing_like(), si);
        g.bench_function(format!("{label}/BFV1"), |b| {
            b.iter(|| sim.run(&wl).unwrap().cycles)
        });
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
