//! Figure 13 bench: L1 miss-latency sensitivity (300/600/900 cycles) on a
//! representative trace.
//!
//! Regenerate the full figure with `cargo run --release -p subwarp-bench
//! --bin figures -- fig13`.

use criterion::{criterion_group, criterion_main, Criterion};
use std::time::Duration;
use subwarp_core::{SiConfig, Simulator, SmConfig};
use subwarp_workloads::trace_by_name;

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig13");
    g.sample_size(10);
    g.warm_up_time(Duration::from_millis(500));
    g.measurement_time(Duration::from_secs(2));
    let wl = trace_by_name("Ctrl").expect("suite trace").build();
    for lat in [300u64, 600, 900] {
        let sm = SmConfig::turing_like().with_miss_latency(lat);
        let base = Simulator::new(sm.clone(), SiConfig::disabled());
        let si = Simulator::new(sm, SiConfig::best());
        g.bench_function(format!("baseline/lat{lat}"), |b| {
            b.iter(|| base.run(&wl).unwrap().cycles)
        });
        g.bench_function(format!("si/lat{lat}"), |b| {
            b.iter(|| si.run(&wl).unwrap().cycles)
        });
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
