//! Figure 14 bench: warp-slot throttling (8/16/32 slots per SM).
//!
//! Regenerate the full figure with `cargo run --release -p subwarp-bench
//! --bin figures -- fig14`.

use criterion::{criterion_group, criterion_main, Criterion};
use std::time::Duration;
use subwarp_core::{SiConfig, Simulator, SmConfig};
use subwarp_workloads::trace_by_name;

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig14");
    g.sample_size(10);
    g.warm_up_time(Duration::from_millis(500));
    g.measurement_time(Duration::from_secs(2));
    let wl = trace_by_name("MC").expect("suite trace").build();
    for per_pb in [2usize, 4, 8] {
        let sm = SmConfig::turing_like().with_warp_slots_per_pb(per_pb);
        let base = Simulator::new(sm.clone(), SiConfig::disabled());
        let si = Simulator::new(sm, SiConfig::best());
        let slots = per_pb * 4;
        g.bench_function(format!("baseline/{slots}slots"), |b| {
            b.iter(|| base.run(&wl).unwrap().cycles)
        });
        g.bench_function(format!("si/{slots}slots"), |b| {
            b.iter(|| si.run(&wl).unwrap().cycles)
        });
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
