//! Figure 15 bench: thread-status-table capacity (2/4/6/unlimited subwarps
//! per warp).
//!
//! Regenerate the full figure with `cargo run --release -p subwarp-bench
//! --bin figures -- fig15`.

use criterion::{criterion_group, criterion_main, Criterion};
use std::time::Duration;
use subwarp_core::{SiConfig, Simulator, SmConfig};
use subwarp_workloads::trace_by_name;

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig15");
    g.sample_size(10);
    g.warm_up_time(Duration::from_millis(500));
    g.measurement_time(Duration::from_secs(2));
    let wl = trace_by_name("BFV1").expect("suite trace").build();
    for n in [2usize, 4, 6, 32] {
        let si = Simulator::new(
            SmConfig::turing_like(),
            SiConfig::best().with_max_subwarps(n),
        );
        g.bench_function(format!("si/{n}subwarps"), |b| {
            b.iter(|| si.run(&wl).unwrap().cycles)
        });
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
