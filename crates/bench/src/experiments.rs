//! Experiment implementations. Each returns plain data so the `figures`
//! binary, the criterion benches, and the integration tests can all share
//! them. Every experiment propagates simulation failures as
//! [`SimError`] instead of panicking.
//!
//! Experiments are expressed as [`Sweep`] grids — named simulator
//! configurations crossed with shared, prebuilt workloads — so every
//! figure both avoids rebuilding workloads in its inner loops and runs
//! its independent simulations on the worker pool.

use std::sync::Arc;

use subwarp_core::{
    DivergeOrder, EventRecorder, HierarchyConfig, MemBackendConfig, RunStats, SelectPolicy,
    SiConfig, SimError, Simulator, SmConfig,
};
use subwarp_sweep::Sweep;
use subwarp_workloads::{figure9_workload, microbenchmark_with, MicroConfig};

/// The six SI settings of Figure 12a, in the paper's legend order.
pub fn si_configs() -> Vec<(String, SiConfig)> {
    let policies = [
        SelectPolicy::AllStalled,
        SelectPolicy::HalfStalled,
        SelectPolicy::AnyStalled,
    ];
    let mut v = Vec::new();
    for p in policies {
        for (kind, cfg) in [("SOS", SiConfig::sos(p)), ("Both", SiConfig::both(p))] {
            v.push((format!("{kind},{}", p.label()), cfg));
        }
    }
    v
}

/// Percentage gain of `si` over `base` (`6.3` means 6.3% faster).
pub fn gain_pct(si: &RunStats, base: &RunStats) -> f64 {
    (si.speedup_vs(base) - 1.0) * 100.0
}

// ---------------------------------------------------------------- Figure 3

/// One Figure 3 row: baseline stall characterization of a trace.
#[derive(Debug, Clone, PartialEq)]
pub struct Fig3Row {
    /// Trace name.
    pub name: String,
    /// Total exposed load-to-use stalls / kernel time.
    pub total: f64,
    /// Exposed load-to-use stalls in divergent blocks / kernel time.
    pub divergent: f64,
}

/// Figure 3: baseline exposed-stall characterization over the suite.
pub fn fig3() -> Result<Vec<Fig3Row>, SimError> {
    let sweep = Sweep::over_suite().config("base", SmConfig::turing_like(), SiConfig::disabled());
    let grid = sweep.run()?;
    Ok(sweep
        .workload_names()
        .zip(&grid)
        .map(|(name, row)| Fig3Row {
            name: name.to_owned(),
            total: row[0].exposed_ratio(),
            divergent: row[0].exposed_divergent_ratio(),
        })
        .collect())
}

// --------------------------------------------------------------- Table III

/// One Table III cell: microbenchmark speedup at a divergence factor.
#[derive(Debug, Clone, PartialEq)]
pub struct Table3Row {
    /// `SUBWARP_SIZE` (paper's top row).
    pub subwarp_size: usize,
    /// Divergence factor (`32 / subwarp_size`).
    pub divergence_factor: usize,
    /// SI speedup over baseline (×).
    pub speedup: f64,
    /// Exposed fetch-stall share under SI (explains the 32-way taper).
    pub si_fetch_ratio: f64,
}

/// Table III: microbenchmark speedups at divergence factors 2..32, fixed
/// 600-cycle miss latency. `iterations` trades accuracy for runtime
/// (the paper's figure uses a steady-state loop; ≥4 is representative).
pub fn table3(iterations: u32) -> Result<Vec<Table3Row>, SimError> {
    let sizes = [16usize, 8, 4, 2, 1];
    let mut sweep = Sweep::new()
        .config("base", SmConfig::turing_like(), SiConfig::disabled())
        .config(
            "si",
            SmConfig::turing_like(),
            SiConfig::both(SelectPolicy::AnyStalled),
        );
    for ss in sizes {
        let wl = microbenchmark_with(MicroConfig {
            subwarp_size: ss,
            iterations,
            ..MicroConfig::default()
        });
        sweep = sweep.workload(wl.name.clone(), Arc::new(wl));
    }
    let grid = sweep.run()?;
    Ok(sizes
        .iter()
        .zip(&grid)
        .map(|(&ss, row)| {
            let (b, s) = (&row[0], &row[1]);
            Table3Row {
                subwarp_size: ss,
                divergence_factor: 32 / ss,
                speedup: s.speedup_vs(b),
                si_fetch_ratio: s.exposed_fetch_stalls as f64 / s.cycles as f64,
            }
        })
        .collect())
}

// --------------------------------------------------------------- Figure 10

/// Figure 10 state-machine walkthroughs on the Figure 9 toy:
/// `(stats, events)` without yield (10a) and with yield (10b).
///
/// Stays serial: `run_recorded` returns the event tape alongside the
/// stats, and two toy runs are far below the pool's break-even point.
#[allow(clippy::type_complexity)]
pub fn fig10() -> Result<((RunStats, EventRecorder), (RunStats, EventRecorder)), SimError> {
    let wl = figure9_workload();
    let a = Simulator::new(
        SmConfig::turing_like(),
        SiConfig::sos(SelectPolicy::AnyStalled),
    )
    .run_recorded(&wl)?;
    let b = Simulator::new(
        SmConfig::turing_like(),
        SiConfig::both(SelectPolicy::AnyStalled),
    )
    .run_recorded(&wl)?;
    Ok((a, b))
}

// -------------------------------------------------------------- Figure 12a

/// Per-trace speedups for every SI configuration.
#[derive(Debug, Clone, PartialEq)]
pub struct Fig12aRow {
    /// Trace name.
    pub name: String,
    /// `(config label, speedup %)` for the six settings.
    pub speedups: Vec<(String, f64)>,
    /// Best configuration's speedup % (the BestOf bar).
    pub best_of: f64,
}

/// The Figure 12a job grid — the full suite × (baseline + the six SI
/// settings). Also the `perf` binary's reference sweep.
pub fn fig12a_sweep() -> Sweep {
    let mut sweep =
        Sweep::over_suite().config("base", SmConfig::turing_like(), SiConfig::disabled());
    for (label, si) in si_configs() {
        sweep = sweep.config(label, SmConfig::turing_like(), si);
    }
    sweep
}

/// Figure 12a: suite speedups across SOS/Both × N policies at 600 cycles.
pub fn fig12a() -> Result<Vec<Fig12aRow>, SimError> {
    let configs = si_configs();
    let sweep = fig12a_sweep();
    let grid = sweep.run()?;
    Ok(sweep
        .workload_names()
        .zip(&grid)
        .map(|(name, row)| {
            let base = &row[0];
            let speedups: Vec<(String, f64)> = configs
                .iter()
                .zip(&row[1..])
                .map(|((label, _), s)| (label.clone(), gain_pct(s, base)))
                .collect();
            let best_of = speedups
                .iter()
                .map(|(_, g)| *g)
                .fold(f64::NEG_INFINITY, f64::max);
            Fig12aRow {
                name: name.to_owned(),
                speedups,
                best_of,
            }
        })
        .collect())
}

// -------------------------------------------------------------- Figure 12b

/// Per-trace exposed-stall reductions under the paper's best setting.
#[derive(Debug, Clone, PartialEq)]
pub struct Fig12bRow {
    /// Trace name.
    pub name: String,
    /// Reduction in total exposed load-to-use stalls (fraction, positive =
    /// reduced).
    pub total_reduction: f64,
    /// Reduction in divergent exposed load-to-use stalls.
    pub divergent_reduction: f64,
}

/// Figure 12b: stall reductions of `Both, N ≥ 0.5` vs baseline.
pub fn fig12b() -> Result<Vec<Fig12bRow>, SimError> {
    let sweep = Sweep::over_suite()
        .config("base", SmConfig::turing_like(), SiConfig::disabled())
        .config("si", SmConfig::turing_like(), SiConfig::best());
    let grid = sweep.run()?;
    Ok(sweep
        .workload_names()
        .zip(&grid)
        .map(|(name, row)| {
            let (b, s) = (&row[0], &row[1]);
            Fig12bRow {
                name: name.to_owned(),
                total_reduction: RunStats::reduction(s.exposed_load_stalls, b.exposed_load_stalls),
                divergent_reduction: RunStats::reduction(
                    s.exposed_load_stalls_divergent,
                    b.exposed_load_stalls_divergent,
                ),
            }
        })
        .collect())
}

// --------------------------------------------------------------- Figure 13

/// Mean suite speedups per SI configuration at one miss latency.
#[derive(Debug, Clone, PartialEq)]
pub struct Fig13Row {
    /// L1 miss latency (300/600/900).
    pub latency: u64,
    /// `(config label, mean speedup %)`.
    pub means: Vec<(String, f64)>,
    /// Mean of per-trace best configurations.
    pub best_of: f64,
}

/// Figure 13: latency sensitivity sweep over {300, 600, 900} cycles.
pub fn fig13() -> Result<Vec<Fig13Row>, SimError> {
    let configs = si_configs();
    let mut rows = Vec::new();
    for lat in [300u64, 600, 900] {
        let sm = SmConfig::turing_like().with_miss_latency(lat);
        let mut sweep = Sweep::over_suite().config("base", sm.clone(), SiConfig::disabled());
        for (label, si) in &configs {
            sweep = sweep.config(label.clone(), sm.clone(), *si);
        }
        let grid = sweep.run()?;
        // gains[c][t]: config c's gain on trace t.
        let mut gains = vec![Vec::new(); configs.len()];
        let mut best = Vec::new();
        for row in &grid {
            let base = &row[0];
            let mut trace_best = f64::NEG_INFINITY;
            for (ci, s) in row[1..].iter().enumerate() {
                let g = gain_pct(s, base);
                gains[ci].push(g);
                trace_best = trace_best.max(g);
            }
            best.push(trace_best);
        }
        rows.push(Fig13Row {
            latency: lat,
            means: configs
                .iter()
                .zip(&gains)
                .map(|((label, _), g)| (label.clone(), subwarp_stats::mean(g)))
                .collect(),
            best_of: subwarp_stats::mean(&best),
        });
    }
    Ok(rows)
}

// --------------------------------------------------------------- Figure 14

/// Per-trace SI speedups at one warp-slot budget, against an equally
/// throttled baseline.
#[derive(Debug, Clone, PartialEq)]
pub struct Fig14Row {
    /// Total SM warp slots (8/16/32).
    pub warp_slots: usize,
    /// `(trace, speedup %)`.
    pub gains: Vec<(String, f64)>,
    /// Suite mean.
    pub mean: f64,
}

/// Figure 14: warp-slot sensitivity (8/16/32 slots per SM).
pub fn fig14() -> Result<Vec<Fig14Row>, SimError> {
    let mut rows = Vec::new();
    for per_pb in [2usize, 4, 8] {
        let sm = SmConfig::turing_like().with_warp_slots_per_pb(per_pb);
        let sweep = Sweep::over_suite()
            .config("base", sm.clone(), SiConfig::disabled())
            .config("si", sm, SiConfig::best());
        let grid = sweep.run()?;
        let gains: Vec<(String, f64)> = sweep
            .workload_names()
            .zip(&grid)
            .map(|(name, row)| (name.to_owned(), gain_pct(&row[1], &row[0])))
            .collect();
        let mean = subwarp_stats::mean(&gains.iter().map(|(_, g)| *g).collect::<Vec<_>>());
        rows.push(Fig14Row {
            warp_slots: per_pb * 4,
            gains,
            mean,
        });
    }
    Ok(rows)
}

// --------------------------------------------------------------- Figure 15

/// Per-trace SI speedups at one thread-status-table capacity.
#[derive(Debug, Clone, PartialEq)]
pub struct Fig15Row {
    /// Maximum subwarps per warp (TST entries); 32 = unlimited.
    pub max_subwarps: usize,
    /// `(trace, speedup %)`.
    pub gains: Vec<(String, f64)>,
    /// Suite mean.
    pub mean: f64,
}

/// Figure 15: subwarps-per-warp sensitivity (2/4/6/unlimited). One grid:
/// the baseline column is shared by all four capacities, so it is
/// simulated once.
pub fn fig15() -> Result<Vec<Fig15Row>, SimError> {
    let caps = [2usize, 4, 6, 32];
    let mut sweep =
        Sweep::over_suite().config("base", SmConfig::turing_like(), SiConfig::disabled());
    for n in caps {
        sweep = sweep.config(
            format!("tst{n}"),
            SmConfig::turing_like(),
            SiConfig::best().with_max_subwarps(n),
        );
    }
    let grid = sweep.run()?;
    let mut rows = Vec::new();
    for (ci, n) in caps.into_iter().enumerate() {
        let gains: Vec<(String, f64)> = sweep
            .workload_names()
            .zip(&grid)
            .map(|(name, row)| (name.to_owned(), gain_pct(&row[1 + ci], &row[0])))
            .collect();
        let mean = subwarp_stats::mean(&gains.iter().map(|(_, g)| *g).collect::<Vec<_>>());
        rows.push(Fig15Row {
            max_subwarps: n,
            gains,
            mean,
        });
    }
    Ok(rows)
}

// ------------------------------------------------------------ §V-C-4 icache

/// Instruction-cache sizing result (§V-C-4).
#[derive(Debug, Clone, PartialEq)]
pub struct IcacheResult {
    /// Mean SI gain with the paper's upsized caches (16 KB L0 / 64 KB L1I).
    pub big_mean: f64,
    /// Mean SI gain with 4× smaller caches (shipping-GPU-like).
    pub small_mean: f64,
}

/// §V-C-4: rerun the best setting with 4× smaller L0/L1 instruction caches.
pub fn icache() -> Result<IcacheResult, SimError> {
    let small = SmConfig::turing_like().with_small_icaches();
    let sweep = Sweep::over_suite()
        .config("big/base", SmConfig::turing_like(), SiConfig::disabled())
        .config("big/si", SmConfig::turing_like(), SiConfig::best())
        .config("small/base", small.clone(), SiConfig::disabled())
        .config("small/si", small, SiConfig::best());
    let grid = sweep.run()?;
    let mean_gain = |si: usize, base: usize| {
        let gains: Vec<f64> = grid
            .iter()
            .map(|row| gain_pct(&row[si], &row[base]))
            .collect();
        subwarp_stats::mean(&gains)
    };
    Ok(IcacheResult {
        big_mean: mean_gain(1, 0),
        small_mean: mean_gain(3, 2),
    })
}

// ------------------------------------------------------- order ablation §VI

/// Divergent-path execution-order ablation (§VI, limiter #3).
#[derive(Debug, Clone, PartialEq)]
pub struct OrderAblation {
    /// `(order label, mean SI gain %)`.
    pub means: Vec<(String, f64)>,
}

/// Sweeps which side of a divergent branch executes first, quantifying the
/// paper's observation that subwarp encounter order gates SI's value.
pub fn ablation_diverge_order() -> Result<OrderAblation, SimError> {
    let orders = [
        ("fallthrough-first", DivergeOrder::FallthroughFirst),
        ("taken-first", DivergeOrder::TakenFirst),
        ("random", DivergeOrder::Random),
        // §VI future work: compiler stall hints steer the order (the
        // megakernel generator annotates its dispatch branches).
        ("hinted", DivergeOrder::Hinted),
    ];
    let mut sweep = Sweep::over_suite();
    for (label, order) in orders {
        let mut sm = SmConfig::turing_like();
        sm.diverge_order = order;
        sweep = sweep
            .config(format!("{label}/base"), sm.clone(), SiConfig::disabled())
            .config(format!("{label}/si"), sm, SiConfig::best());
    }
    let grid = sweep.run()?;
    let means = orders
        .iter()
        .enumerate()
        .map(|(oi, (label, _))| {
            let gains: Vec<f64> = grid
                .iter()
                .map(|row| gain_pct(&row[2 * oi + 1], &row[2 * oi]))
                .collect();
            (label.to_string(), subwarp_stats::mean(&gains))
        })
        .collect();
    Ok(OrderAblation { means })
}

// ---------------------------------------------------- DWS comparison §VII-B

/// SI vs a Dynamic-Warp-Subdivision-like scheme at one occupancy point.
#[derive(Debug, Clone, PartialEq)]
pub struct DwsRow {
    /// Warps launched (out of 32 slots).
    pub n_warps: usize,
    /// Subwarp Interleaving gain % (TST-hosted subwarps).
    pub si_gain: f64,
    /// DWS-like gain % (subwarps must fit in free warp slots).
    pub dws_gain: f64,
}

/// §VII-B: "our approach will perform better than DWS, especially when
/// there are few unused warp slots." Sweeps occupancy on the most
/// divergence-limited trace; DWS-like interleaving needs free slots, so its
/// gains collapse as the SM fills while SI's do not.
pub fn dws_comparison() -> Result<Vec<DwsRow>, SimError> {
    let trace = subwarp_workloads::trace_by_name("BFV1").expect("suite trace");
    let occupancies = [8usize, 16, 24, 32];
    let mut sweep = Sweep::new()
        .config("base", SmConfig::turing_like(), SiConfig::disabled())
        .config("si", SmConfig::turing_like(), SiConfig::best())
        .config("dws", SmConfig::turing_like(), SiConfig::dws_like());
    for n in occupancies {
        let mut cfg = trace.config.clone();
        cfg.n_warps = n;
        sweep = sweep.workload(format!("BFV1/{n}w"), Arc::new(cfg.build()));
    }
    let grid = sweep.run()?;
    Ok(occupancies
        .iter()
        .zip(&grid)
        .map(|(&n, row)| DwsRow {
            n_warps: n,
            si_gain: gain_pct(&row[1], &row[0]),
            dws_gain: gain_pct(&row[2], &row[0]),
        })
        .collect())
}

// -------------------------------------------- compute negative result §VI

/// SI's (lack of) effect on one non-raytracing compute kernel.
#[derive(Debug, Clone, PartialEq)]
pub struct ComputeRow {
    /// Kernel name.
    pub name: String,
    /// SI gain % (expected: within the margin of noise).
    pub gain: f64,
    /// Baseline exposed load-to-use stall ratio.
    pub exposed: f64,
    /// Divergent share of exposure.
    pub divergent: f64,
}

/// §VI: "We profiled a broad suite of more than 400 non-raytracing CUDA and
/// Direct3D compute kernels and found only 11 that feature long stalls in
/// divergent code, and none benefited beyond the margin of noise from SI."
/// Runs the archetype compute kernels and reports SI's (absent) effect.
pub fn compute_negative_result() -> Result<Vec<ComputeRow>, SimError> {
    let mut sweep = Sweep::new()
        .config("base", SmConfig::turing_like(), SiConfig::disabled())
        .config("si", SmConfig::turing_like(), SiConfig::best());
    for wl in subwarp_workloads::compute_suite() {
        let name = wl.name.clone();
        sweep = sweep.workload(name, Arc::new(wl));
    }
    let grid = sweep.run()?;
    Ok(sweep
        .workload_names()
        .zip(&grid)
        .map(|(name, row)| {
            let (b, s) = (&row[0], &row[1]);
            ComputeRow {
                name: name.to_owned(),
                gain: gain_pct(s, b),
                exposed: b.exposed_ratio(),
                divergent: b.exposed_divergent_ratio(),
            }
        })
        .collect())
}

// ------------------------------------------------- memory-hierarchy sweep

/// One point of the memory-hierarchy sensitivity sweep: a hierarchical
/// backend variant, its *measured* memory behaviour over the suite, and the
/// mean SI gain it yields.
#[derive(Debug, Clone, PartialEq)]
pub struct MemSweepRow {
    /// Variant label (`lat x1.5`, `burst 16`, ...).
    pub label: String,
    /// Mean fill latency actually observed over the suite's baseline runs
    /// (total fill cycles / fills) — the x-axis of the latency trend.
    pub mean_fill_latency: f64,
    /// Mean SI (`Both,N>=0.5`) speedup % over the suite.
    pub mean_gain_pct: f64,
    /// Suite-aggregate L2 hit rate of the baseline runs.
    pub l2_hit_rate: f64,
    /// Mean per-channel DRAM busy fraction of the baseline runs.
    pub channel_utilization: f64,
}

/// The two axes of `figures mem-sweep`.
#[derive(Debug, Clone, PartialEq)]
pub struct MemSweepResult {
    /// L2/DRAM latency scaling at fixed bandwidth (Figure 13's question,
    /// re-asked with load-dependent latency).
    pub latency: Vec<MemSweepRow>,
    /// Channel-bandwidth scaling (burst cycles per line) at fixed latency.
    pub bandwidth: Vec<MemSweepRow>,
}

/// A [`HierarchyConfig`] with every latency leg scaled by `scale`.
fn scaled_hierarchy(scale: f64) -> HierarchyConfig {
    let s = |x: u64| ((x as f64 * scale).round() as u64).max(1);
    let mut h = HierarchyConfig::turing_like();
    h.l2_hit_latency = s(h.l2_hit_latency);
    h.dram.row_hit_latency = s(h.dram.row_hit_latency);
    h.dram.row_miss_latency = s(h.dram.row_miss_latency);
    h
}

/// Runs baseline vs. SI-best over the suite on one hierarchical variant and
/// reduces the grid to a [`MemSweepRow`].
fn mem_sweep_point(label: String, h: HierarchyConfig) -> Result<MemSweepRow, SimError> {
    let sm = SmConfig::turing_like().with_mem_backend(MemBackendConfig::Hierarchical(h));
    let sweep = Sweep::over_suite()
        .config("base", sm.clone(), SiConfig::disabled())
        .config("si", sm, SiConfig::best());
    let grid = sweep.run()?;
    let mut gains = Vec::new();
    let mut fills = 0u64;
    let mut fill_cycles = 0u64;
    let mut l2 = subwarp_core::MemBackendStats::default();
    let mut utils = Vec::new();
    for row in &grid {
        let (base, si) = (&row[0], &row[1]);
        gains.push(gain_pct(si, base));
        fills += base.mem.fills;
        fill_cycles += base.mem.total_fill_latency;
        l2.merge(&base.mem);
        let busy: u64 = base.mem.channel_busy_cycles.iter().sum();
        let chans = base.mem.channel_busy_cycles.len() as u64;
        if chans > 0 && base.sm_cycles_total > 0 {
            utils.push(busy as f64 / (chans * base.sm_cycles_total) as f64);
        }
    }
    Ok(MemSweepRow {
        label,
        mean_fill_latency: if fills == 0 {
            0.0
        } else {
            fill_cycles as f64 / fills as f64
        },
        mean_gain_pct: subwarp_stats::mean(&gains),
        l2_hit_rate: 1.0 - l2.l2.miss_ratio(),
        channel_utilization: subwarp_stats::mean(&utils),
    })
}

/// `figures mem-sweep`: SI sensitivity to *realistic* memory behaviour.
///
/// Axis 1 scales every L2/DRAM latency leg (×0.5 … ×2), re-asking Figure
/// 13's question with load-dependent latency: SI's upside should grow
/// monotonically with the mean fill latency it helps hide. Axis 2 scales
/// per-channel bandwidth via the burst occupancy (1 … 64 cycles/line),
/// probing whether SI's extra memory-level parallelism still pays when
/// channels saturate.
pub fn mem_sweep() -> Result<MemSweepResult, SimError> {
    let mut latency = Vec::new();
    for scale in [0.5, 1.0, 1.5, 2.0] {
        latency.push(mem_sweep_point(
            format!("lat x{scale}"),
            scaled_hierarchy(scale),
        )?);
    }
    let mut bandwidth = Vec::new();
    for burst in [1u64, 4, 16, 64] {
        let mut h = HierarchyConfig::turing_like();
        h.dram.burst_cycles = burst;
        bandwidth.push(mem_sweep_point(format!("burst {burst}"), h)?);
    }
    Ok(MemSweepResult { latency, bandwidth })
}

// --------------------------------------------------------------- chip sweep

/// One point of `figures chip-sweep`: a chip size, how saturated the shared
/// memory partitions ran, and the SI gain that survived the contention.
#[derive(Debug, Clone, PartialEq)]
pub struct ChipSweepRow {
    /// SM count sharing one set of L2/DRAM partitions.
    pub n_sms: usize,
    /// Baseline (SI disabled) chip cycles.
    pub base_cycles: u64,
    /// SI (`Both,N>=0.5`) speedup % over the baseline at this chip size.
    pub gain_pct: f64,
    /// Chip-aggregate L2 hit rate of the baseline run.
    pub l2_hit_rate: f64,
    /// Mean DRAM channel busy fraction of the baseline run (busy cycles
    /// over channels × chip cycles) — the saturation axis.
    pub channel_utilization: f64,
    /// Mean fill latency the baseline's loads actually saw, inflated by
    /// cross-SM bank/channel queueing as the chip grows.
    pub mean_fill_latency: f64,
}

/// `figures chip-sweep`: the paper's Sec. VI limiter trend, reproduced at
/// chip scale. Work scales *weakly* — every SM runs the same per-SM slice
/// of the divergent microbenchmark (disjoint address regions, so DRAM
/// traffic grows with the chip) — while the shared partitions stay fixed at
/// the TU102-like configuration. As SM count drives the shared channels
/// toward saturation, the extra memory-level parallelism SI generates has
/// nowhere to go: the gain it shows at small chips erodes.
pub fn chip_sweep() -> Result<Vec<ChipSweepRow>, SimError> {
    const WARPS_PER_SM: usize = 8;
    let mut rows = Vec::new();
    for n_sms in [1usize, 2, 4, 9, 18, 36] {
        let wl = microbenchmark_with(MicroConfig {
            n_warps: WARPS_PER_SM * n_sms,
            ..MicroConfig::default()
        });
        let mut sm = SmConfig::turing_like().with_mem_backend(MemBackendConfig::Hierarchical(
            HierarchyConfig::turing_like(),
        ));
        sm.n_sms = n_sms;
        let base = Simulator::new(sm.clone(), SiConfig::disabled()).run(&wl)?;
        let si = Simulator::new(sm, SiConfig::best()).run(&wl)?;
        let busy: u64 = base.mem.channel_busy_cycles.iter().sum();
        let chans = base.mem.channel_busy_cycles.len() as u64;
        rows.push(ChipSweepRow {
            n_sms,
            base_cycles: base.cycles,
            gain_pct: gain_pct(&si, &base),
            l2_hit_rate: 1.0 - base.mem.l2.miss_ratio(),
            channel_utilization: if chans == 0 || base.cycles == 0 {
                0.0
            } else {
                busy as f64 / (chans * base.cycles) as f64
            },
            mean_fill_latency: if base.mem.fills == 0 {
                0.0
            } else {
                base.mem.total_fill_latency as f64 / base.mem.fills as f64
            },
        });
    }
    Ok(rows)
}

// ----------------------------------------------------------- trace files

/// A workload loaded from a serialized `subwarp-trace` file: display name,
/// shared workload, and the trace content fingerprint that keys its sweep
/// cells.
pub type LoadedTrace = (String, Arc<subwarp_core::Workload>, u64);

/// Loads a binary trace file into a sweep-ready workload row.
///
/// The row name is the file stem (so `tests/corpus/toy.swt` renders as
/// `toy`), and the returned fingerprint is
/// [`subwarp_trace::trace_fingerprint`] over the raw bytes — the identity
/// journals and memo stores key on.
pub fn load_trace_file(path: &str) -> Result<LoadedTrace, SimError> {
    let bytes = std::fs::read(path).map_err(|e| SimError::InvalidWorkload {
        workload: path.to_owned(),
        what: format!("cannot read trace file: {e}"),
    })?;
    let wl = subwarp_trace::decode_workload(&bytes).map_err(SimError::from)?;
    let name = std::path::Path::new(path)
        .file_stem()
        .map(|s| s.to_string_lossy().into_owned())
        .unwrap_or_else(|| path.to_owned());
    Ok((name, Arc::new(wl), subwarp_trace::trace_fingerprint(&bytes)))
}

/// Figure 12a-style report over trace files instead of the built-in
/// suite: each file is a row (keyed by trace content fingerprint, so
/// `--resume` journals survive across processes), the columns are the
/// baseline plus the six SI settings.
pub fn trace_report(files: &[LoadedTrace]) -> Result<Vec<Fig12aRow>, SimError> {
    let configs = si_configs();
    let mut sweep = Sweep::new();
    for (name, wl, fp) in files {
        sweep = sweep.workload_hashed(name.clone(), Arc::clone(wl), *fp);
    }
    sweep = sweep.config("base", SmConfig::turing_like(), SiConfig::disabled());
    for (label, si) in &configs {
        sweep = sweep.config(label.clone(), SmConfig::turing_like(), *si);
    }
    let grid = sweep.run()?;
    Ok(sweep
        .workload_names()
        .zip(&grid)
        .map(|(name, row)| {
            let base = &row[0];
            let speedups: Vec<(String, f64)> = configs
                .iter()
                .zip(&row[1..])
                .map(|((label, _), s)| (label.clone(), gain_pct(s, base)))
                .collect();
            let best_of = speedups
                .iter()
                .map(|(_, g)| *g)
                .fold(f64::NEG_INFINITY, f64::max);
            Fig12aRow {
                name: name.to_owned(),
                speedups,
                best_of,
            }
        })
        .collect())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn si_config_labels_cover_figure_12a_legend() {
        let labels: Vec<String> = si_configs().into_iter().map(|(l, _)| l).collect();
        assert_eq!(labels.len(), 6);
        assert!(labels.contains(&"SOS,N=1".to_string()));
        assert!(labels.contains(&"Both,N>=0.5".to_string()));
        assert!(labels.contains(&"Both,N>0".to_string()));
    }

    #[test]
    fn gain_pct_math() {
        let base = RunStats {
            cycles: 1063,
            ..Default::default()
        };
        let si = RunStats {
            cycles: 1000,
            ..Default::default()
        };
        assert!((gain_pct(&si, &base) - 6.3).abs() < 0.01);
    }
}
