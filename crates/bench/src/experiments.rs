//! Experiment implementations. Each returns plain data so the `figures`
//! binary, the criterion benches, and the integration tests can all share
//! them.

use subwarp_core::{
    DivergeOrder, EventRecorder, RunStats, SelectPolicy, SiConfig, Simulator, SmConfig,
};
use subwarp_workloads::{figure9_workload, microbenchmark_with, suite, MicroConfig};

/// The six SI settings of Figure 12a, in the paper's legend order.
pub fn si_configs() -> Vec<(String, SiConfig)> {
    let policies =
        [SelectPolicy::AllStalled, SelectPolicy::HalfStalled, SelectPolicy::AnyStalled];
    let mut v = Vec::new();
    for p in policies {
        for (kind, cfg) in [("SOS", SiConfig::sos(p)), ("Both", SiConfig::both(p))] {
            v.push((format!("{kind},{}", p.label()), cfg));
        }
    }
    v
}

/// Percentage gain of `si` over `base` (`6.3` means 6.3% faster).
pub fn gain_pct(si: &RunStats, base: &RunStats) -> f64 {
    (si.speedup_vs(base) - 1.0) * 100.0
}

// ---------------------------------------------------------------- Figure 3

/// One Figure 3 row: baseline stall characterization of a trace.
#[derive(Debug, Clone, PartialEq)]
pub struct Fig3Row {
    /// Trace name.
    pub name: String,
    /// Total exposed load-to-use stalls / kernel time.
    pub total: f64,
    /// Exposed load-to-use stalls in divergent blocks / kernel time.
    pub divergent: f64,
}

/// Figure 3: baseline exposed-stall characterization over the suite.
pub fn fig3() -> Vec<Fig3Row> {
    let sim = Simulator::new(SmConfig::turing_like(), SiConfig::disabled());
    suite()
        .iter()
        .map(|t| {
            let s = sim.run(&t.build());
            Fig3Row {
                name: t.name.to_owned(),
                total: s.exposed_ratio(),
                divergent: s.exposed_divergent_ratio(),
            }
        })
        .collect()
}

// --------------------------------------------------------------- Table III

/// One Table III cell: microbenchmark speedup at a divergence factor.
#[derive(Debug, Clone, PartialEq)]
pub struct Table3Row {
    /// `SUBWARP_SIZE` (paper's top row).
    pub subwarp_size: usize,
    /// Divergence factor (`32 / subwarp_size`).
    pub divergence_factor: usize,
    /// SI speedup over baseline (×).
    pub speedup: f64,
    /// Exposed fetch-stall share under SI (explains the 32-way taper).
    pub si_fetch_ratio: f64,
}

/// Table III: microbenchmark speedups at divergence factors 2..32, fixed
/// 600-cycle miss latency. `iterations` trades accuracy for runtime
/// (the paper's figure uses a steady-state loop; ≥4 is representative).
pub fn table3(iterations: u32) -> Vec<Table3Row> {
    let base_sim = Simulator::new(SmConfig::turing_like(), SiConfig::disabled());
    let si_sim =
        Simulator::new(SmConfig::turing_like(), SiConfig::both(SelectPolicy::AnyStalled));
    [16usize, 8, 4, 2, 1]
        .iter()
        .map(|&ss| {
            let wl = microbenchmark_with(MicroConfig {
                subwarp_size: ss,
                iterations,
                ..MicroConfig::default()
            });
            let b = base_sim.run(&wl);
            let s = si_sim.run(&wl);
            Table3Row {
                subwarp_size: ss,
                divergence_factor: 32 / ss,
                speedup: s.speedup_vs(&b),
                si_fetch_ratio: s.exposed_fetch_stalls as f64 / s.cycles as f64,
            }
        })
        .collect()
}

// --------------------------------------------------------------- Figure 10

/// Figure 10 state-machine walkthroughs on the Figure 9 toy:
/// `(stats, events)` without yield (10a) and with yield (10b).
pub fn fig10() -> ((RunStats, EventRecorder), (RunStats, EventRecorder)) {
    let wl = figure9_workload();
    let a = Simulator::new(SmConfig::turing_like(), SiConfig::sos(SelectPolicy::AnyStalled))
        .run_recorded(&wl);
    let b = Simulator::new(SmConfig::turing_like(), SiConfig::both(SelectPolicy::AnyStalled))
        .run_recorded(&wl);
    (a, b)
}

// -------------------------------------------------------------- Figure 12a

/// Per-trace speedups for every SI configuration.
#[derive(Debug, Clone, PartialEq)]
pub struct Fig12aRow {
    /// Trace name.
    pub name: String,
    /// `(config label, speedup %)` for the six settings.
    pub speedups: Vec<(String, f64)>,
    /// Best configuration's speedup % (the BestOf bar).
    pub best_of: f64,
}

/// Figure 12a: suite speedups across SOS/Both × N policies at 600 cycles.
pub fn fig12a() -> Vec<Fig12aRow> {
    let base_sim = Simulator::new(SmConfig::turing_like(), SiConfig::disabled());
    let configs = si_configs();
    suite()
        .iter()
        .map(|t| {
            let wl = t.build();
            let base = base_sim.run(&wl);
            let speedups: Vec<(String, f64)> = configs
                .iter()
                .map(|(label, si)| {
                    let s = Simulator::new(SmConfig::turing_like(), *si).run(&wl);
                    (label.clone(), gain_pct(&s, &base))
                })
                .collect();
            let best_of =
                speedups.iter().map(|(_, g)| *g).fold(f64::NEG_INFINITY, f64::max);
            Fig12aRow { name: t.name.to_owned(), speedups, best_of }
        })
        .collect()
}

// -------------------------------------------------------------- Figure 12b

/// Per-trace exposed-stall reductions under the paper's best setting.
#[derive(Debug, Clone, PartialEq)]
pub struct Fig12bRow {
    /// Trace name.
    pub name: String,
    /// Reduction in total exposed load-to-use stalls (fraction, positive =
    /// reduced).
    pub total_reduction: f64,
    /// Reduction in divergent exposed load-to-use stalls.
    pub divergent_reduction: f64,
}

/// Figure 12b: stall reductions of `Both, N ≥ 0.5` vs baseline.
pub fn fig12b() -> Vec<Fig12bRow> {
    let base_sim = Simulator::new(SmConfig::turing_like(), SiConfig::disabled());
    let si_sim = Simulator::new(SmConfig::turing_like(), SiConfig::best());
    suite()
        .iter()
        .map(|t| {
            let wl = t.build();
            let b = base_sim.run(&wl);
            let s = si_sim.run(&wl);
            Fig12bRow {
                name: t.name.to_owned(),
                total_reduction: RunStats::reduction(
                    s.exposed_load_stalls,
                    b.exposed_load_stalls,
                ),
                divergent_reduction: RunStats::reduction(
                    s.exposed_load_stalls_divergent,
                    b.exposed_load_stalls_divergent,
                ),
            }
        })
        .collect()
}

// --------------------------------------------------------------- Figure 13

/// Mean suite speedups per SI configuration at one miss latency.
#[derive(Debug, Clone, PartialEq)]
pub struct Fig13Row {
    /// L1 miss latency (300/600/900).
    pub latency: u64,
    /// `(config label, mean speedup %)`.
    pub means: Vec<(String, f64)>,
    /// Mean of per-trace best configurations.
    pub best_of: f64,
}

/// Figure 13: latency sensitivity sweep over {300, 600, 900} cycles.
pub fn fig13() -> Vec<Fig13Row> {
    let configs = si_configs();
    [300u64, 600, 900]
        .iter()
        .map(|&lat| {
            let sm = SmConfig::turing_like().with_miss_latency(lat);
            let base_sim = Simulator::new(sm.clone(), SiConfig::disabled());
            // gains[c][t]: config c's gain on trace t.
            let mut gains = vec![Vec::new(); configs.len()];
            let mut best = Vec::new();
            for t in suite() {
                let wl = t.build();
                let b = base_sim.run(&wl);
                let mut trace_best = f64::NEG_INFINITY;
                for (ci, (_, si)) in configs.iter().enumerate() {
                    let g = gain_pct(&Simulator::new(sm.clone(), *si).run(&wl), &b);
                    gains[ci].push(g);
                    trace_best = trace_best.max(g);
                }
                best.push(trace_best);
            }
            Fig13Row {
                latency: lat,
                means: configs
                    .iter()
                    .zip(&gains)
                    .map(|((label, _), g)| (label.clone(), subwarp_stats::mean(g)))
                    .collect(),
                best_of: subwarp_stats::mean(&best),
            }
        })
        .collect()
}

// --------------------------------------------------------------- Figure 14

/// Per-trace SI speedups at one warp-slot budget, against an equally
/// throttled baseline.
#[derive(Debug, Clone, PartialEq)]
pub struct Fig14Row {
    /// Total SM warp slots (8/16/32).
    pub warp_slots: usize,
    /// `(trace, speedup %)`.
    pub gains: Vec<(String, f64)>,
    /// Suite mean.
    pub mean: f64,
}

/// Figure 14: warp-slot sensitivity (8/16/32 slots per SM).
pub fn fig14() -> Vec<Fig14Row> {
    [2usize, 4, 8]
        .iter()
        .map(|&per_pb| {
            let sm = SmConfig::turing_like().with_warp_slots_per_pb(per_pb);
            let base_sim = Simulator::new(sm.clone(), SiConfig::disabled());
            let si_sim = Simulator::new(sm.clone(), SiConfig::best());
            let gains: Vec<(String, f64)> = suite()
                .iter()
                .map(|t| {
                    let wl = t.build();
                    let g = gain_pct(&si_sim.run(&wl), &base_sim.run(&wl));
                    (t.name.to_owned(), g)
                })
                .collect();
            let mean = subwarp_stats::mean(&gains.iter().map(|(_, g)| *g).collect::<Vec<_>>());
            Fig14Row { warp_slots: per_pb * 4, gains, mean }
        })
        .collect()
}

// --------------------------------------------------------------- Figure 15

/// Per-trace SI speedups at one thread-status-table capacity.
#[derive(Debug, Clone, PartialEq)]
pub struct Fig15Row {
    /// Maximum subwarps per warp (TST entries); 32 = unlimited.
    pub max_subwarps: usize,
    /// `(trace, speedup %)`.
    pub gains: Vec<(String, f64)>,
    /// Suite mean.
    pub mean: f64,
}

/// Figure 15: subwarps-per-warp sensitivity (2/4/6/unlimited).
pub fn fig15() -> Vec<Fig15Row> {
    let base_sim = Simulator::new(SmConfig::turing_like(), SiConfig::disabled());
    // Baselines are independent of TST capacity: compute once.
    let baselines: Vec<(String, RunStats, subwarp_core::Workload)> = suite()
        .iter()
        .map(|t| {
            let wl = t.build();
            let b = base_sim.run(&wl);
            (t.name.to_owned(), b, wl)
        })
        .collect();
    [2usize, 4, 6, 32]
        .iter()
        .map(|&n| {
            let si_sim =
                Simulator::new(SmConfig::turing_like(), SiConfig::best().with_max_subwarps(n));
            let gains: Vec<(String, f64)> = baselines
                .iter()
                .map(|(name, b, wl)| (name.clone(), gain_pct(&si_sim.run(wl), b)))
                .collect();
            let mean = subwarp_stats::mean(&gains.iter().map(|(_, g)| *g).collect::<Vec<_>>());
            Fig15Row { max_subwarps: n, gains, mean }
        })
        .collect()
}

// ------------------------------------------------------------ §V-C-4 icache

/// Instruction-cache sizing result (§V-C-4).
#[derive(Debug, Clone, PartialEq)]
pub struct IcacheResult {
    /// Mean SI gain with the paper's upsized caches (16 KB L0 / 64 KB L1I).
    pub big_mean: f64,
    /// Mean SI gain with 4× smaller caches (shipping-GPU-like).
    pub small_mean: f64,
}

/// §V-C-4: rerun the best setting with 4× smaller L0/L1 instruction caches.
pub fn icache() -> IcacheResult {
    let mean_gain = |sm: SmConfig| {
        let base_sim = Simulator::new(sm.clone(), SiConfig::disabled());
        let si_sim = Simulator::new(sm, SiConfig::best());
        let gains: Vec<f64> = suite()
            .iter()
            .map(|t| {
                let wl = t.build();
                gain_pct(&si_sim.run(&wl), &base_sim.run(&wl))
            })
            .collect();
        subwarp_stats::mean(&gains)
    };
    IcacheResult {
        big_mean: mean_gain(SmConfig::turing_like()),
        small_mean: mean_gain(SmConfig::turing_like().with_small_icaches()),
    }
}

// ------------------------------------------------------- order ablation §VI

/// Divergent-path execution-order ablation (§VI, limiter #3).
#[derive(Debug, Clone, PartialEq)]
pub struct OrderAblation {
    /// `(order label, mean SI gain %)`.
    pub means: Vec<(String, f64)>,
}

/// Sweeps which side of a divergent branch executes first, quantifying the
/// paper's observation that subwarp encounter order gates SI's value.
pub fn ablation_diverge_order() -> OrderAblation {
    let orders = [
        ("fallthrough-first", DivergeOrder::FallthroughFirst),
        ("taken-first", DivergeOrder::TakenFirst),
        ("random", DivergeOrder::Random),
        // §VI future work: compiler stall hints steer the order (the
        // megakernel generator annotates its dispatch branches).
        ("hinted", DivergeOrder::Hinted),
    ];
    let means = orders
        .iter()
        .map(|(label, order)| {
            let mut sm = SmConfig::turing_like();
            sm.diverge_order = *order;
            let base_sim = Simulator::new(sm.clone(), SiConfig::disabled());
            let si_sim = Simulator::new(sm, SiConfig::best());
            let gains: Vec<f64> = suite()
                .iter()
                .map(|t| {
                    let wl = t.build();
                    gain_pct(&si_sim.run(&wl), &base_sim.run(&wl))
                })
                .collect();
            (label.to_string(), subwarp_stats::mean(&gains))
        })
        .collect();
    OrderAblation { means }
}

// ---------------------------------------------------- DWS comparison §VII-B

/// SI vs a Dynamic-Warp-Subdivision-like scheme at one occupancy point.
#[derive(Debug, Clone, PartialEq)]
pub struct DwsRow {
    /// Warps launched (out of 32 slots).
    pub n_warps: usize,
    /// Subwarp Interleaving gain % (TST-hosted subwarps).
    pub si_gain: f64,
    /// DWS-like gain % (subwarps must fit in free warp slots).
    pub dws_gain: f64,
}

/// §VII-B: "our approach will perform better than DWS, especially when
/// there are few unused warp slots." Sweeps occupancy on the most
/// divergence-limited trace; DWS-like interleaving needs free slots, so its
/// gains collapse as the SM fills while SI's do not.
pub fn dws_comparison() -> Vec<DwsRow> {
    let trace = subwarp_workloads::trace_by_name("BFV1").expect("suite trace");
    [8usize, 16, 24, 32]
        .iter()
        .map(|&n| {
            let mut cfg = trace.config.clone();
            cfg.n_warps = n;
            let wl = cfg.build();
            let base = Simulator::new(SmConfig::turing_like(), SiConfig::disabled()).run(&wl);
            let si = Simulator::new(SmConfig::turing_like(), SiConfig::best()).run(&wl);
            let dws = Simulator::new(SmConfig::turing_like(), SiConfig::dws_like()).run(&wl);
            DwsRow {
                n_warps: n,
                si_gain: gain_pct(&si, &base),
                dws_gain: gain_pct(&dws, &base),
            }
        })
        .collect()
}

// -------------------------------------------- compute negative result §VI

/// SI's (lack of) effect on one non-raytracing compute kernel.
#[derive(Debug, Clone, PartialEq)]
pub struct ComputeRow {
    /// Kernel name.
    pub name: String,
    /// SI gain % (expected: within the margin of noise).
    pub gain: f64,
    /// Baseline exposed load-to-use stall ratio.
    pub exposed: f64,
    /// Divergent share of exposure.
    pub divergent: f64,
}

/// §VI: "We profiled a broad suite of more than 400 non-raytracing CUDA and
/// Direct3D compute kernels and found only 11 that feature long stalls in
/// divergent code, and none benefited beyond the margin of noise from SI."
/// Runs the archetype compute kernels and reports SI's (absent) effect.
pub fn compute_negative_result() -> Vec<ComputeRow> {
    let base_sim = Simulator::new(SmConfig::turing_like(), SiConfig::disabled());
    let si_sim = Simulator::new(SmConfig::turing_like(), SiConfig::best());
    subwarp_workloads::compute_suite()
        .iter()
        .map(|wl| {
            let b = base_sim.run(wl);
            let s = si_sim.run(wl);
            ComputeRow {
                name: wl.name.clone(),
                gain: gain_pct(&s, &b),
                exposed: b.exposed_ratio(),
                divergent: b.exposed_divergent_ratio(),
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn si_config_labels_cover_figure_12a_legend() {
        let labels: Vec<String> = si_configs().into_iter().map(|(l, _)| l).collect();
        assert_eq!(labels.len(), 6);
        assert!(labels.contains(&"SOS,N=1".to_string()));
        assert!(labels.contains(&"Both,N>=0.5".to_string()));
        assert!(labels.contains(&"Both,N>0".to_string()));
    }

    #[test]
    fn gain_pct_math() {
        let base = RunStats { cycles: 1063, ..Default::default() };
        let si = RunStats { cycles: 1000, ..Default::default() };
        assert!((gain_pct(&si, &base) - 6.3).abs() < 0.01);
    }
}
