//! Experiment implementations. Each returns plain data so the `figures`
//! binary, the criterion benches, and the integration tests can all share
//! them. Every experiment propagates simulation failures as
//! [`SimError`] instead of panicking.

use subwarp_core::{
    DivergeOrder, EventRecorder, RunStats, SelectPolicy, SiConfig, SimError, Simulator, SmConfig,
};
use subwarp_workloads::{figure9_workload, microbenchmark_with, suite, MicroConfig};

/// The six SI settings of Figure 12a, in the paper's legend order.
pub fn si_configs() -> Vec<(String, SiConfig)> {
    let policies = [
        SelectPolicy::AllStalled,
        SelectPolicy::HalfStalled,
        SelectPolicy::AnyStalled,
    ];
    let mut v = Vec::new();
    for p in policies {
        for (kind, cfg) in [("SOS", SiConfig::sos(p)), ("Both", SiConfig::both(p))] {
            v.push((format!("{kind},{}", p.label()), cfg));
        }
    }
    v
}

/// Percentage gain of `si` over `base` (`6.3` means 6.3% faster).
pub fn gain_pct(si: &RunStats, base: &RunStats) -> f64 {
    (si.speedup_vs(base) - 1.0) * 100.0
}

// ---------------------------------------------------------------- Figure 3

/// One Figure 3 row: baseline stall characterization of a trace.
#[derive(Debug, Clone, PartialEq)]
pub struct Fig3Row {
    /// Trace name.
    pub name: String,
    /// Total exposed load-to-use stalls / kernel time.
    pub total: f64,
    /// Exposed load-to-use stalls in divergent blocks / kernel time.
    pub divergent: f64,
}

/// Figure 3: baseline exposed-stall characterization over the suite.
pub fn fig3() -> Result<Vec<Fig3Row>, SimError> {
    let sim = Simulator::new(SmConfig::turing_like(), SiConfig::disabled());
    let mut rows = Vec::new();
    for t in suite() {
        let s = sim.run(&t.build())?;
        rows.push(Fig3Row {
            name: t.name.to_owned(),
            total: s.exposed_ratio(),
            divergent: s.exposed_divergent_ratio(),
        });
    }
    Ok(rows)
}

// --------------------------------------------------------------- Table III

/// One Table III cell: microbenchmark speedup at a divergence factor.
#[derive(Debug, Clone, PartialEq)]
pub struct Table3Row {
    /// `SUBWARP_SIZE` (paper's top row).
    pub subwarp_size: usize,
    /// Divergence factor (`32 / subwarp_size`).
    pub divergence_factor: usize,
    /// SI speedup over baseline (×).
    pub speedup: f64,
    /// Exposed fetch-stall share under SI (explains the 32-way taper).
    pub si_fetch_ratio: f64,
}

/// Table III: microbenchmark speedups at divergence factors 2..32, fixed
/// 600-cycle miss latency. `iterations` trades accuracy for runtime
/// (the paper's figure uses a steady-state loop; ≥4 is representative).
pub fn table3(iterations: u32) -> Result<Vec<Table3Row>, SimError> {
    let base_sim = Simulator::new(SmConfig::turing_like(), SiConfig::disabled());
    let si_sim = Simulator::new(
        SmConfig::turing_like(),
        SiConfig::both(SelectPolicy::AnyStalled),
    );
    let mut rows = Vec::new();
    for ss in [16usize, 8, 4, 2, 1] {
        let wl = microbenchmark_with(MicroConfig {
            subwarp_size: ss,
            iterations,
            ..MicroConfig::default()
        });
        let b = base_sim.run(&wl)?;
        let s = si_sim.run(&wl)?;
        rows.push(Table3Row {
            subwarp_size: ss,
            divergence_factor: 32 / ss,
            speedup: s.speedup_vs(&b),
            si_fetch_ratio: s.exposed_fetch_stalls as f64 / s.cycles as f64,
        });
    }
    Ok(rows)
}

// --------------------------------------------------------------- Figure 10

/// Figure 10 state-machine walkthroughs on the Figure 9 toy:
/// `(stats, events)` without yield (10a) and with yield (10b).
#[allow(clippy::type_complexity)]
pub fn fig10() -> Result<((RunStats, EventRecorder), (RunStats, EventRecorder)), SimError> {
    let wl = figure9_workload();
    let a = Simulator::new(
        SmConfig::turing_like(),
        SiConfig::sos(SelectPolicy::AnyStalled),
    )
    .run_recorded(&wl)?;
    let b = Simulator::new(
        SmConfig::turing_like(),
        SiConfig::both(SelectPolicy::AnyStalled),
    )
    .run_recorded(&wl)?;
    Ok((a, b))
}

// -------------------------------------------------------------- Figure 12a

/// Per-trace speedups for every SI configuration.
#[derive(Debug, Clone, PartialEq)]
pub struct Fig12aRow {
    /// Trace name.
    pub name: String,
    /// `(config label, speedup %)` for the six settings.
    pub speedups: Vec<(String, f64)>,
    /// Best configuration's speedup % (the BestOf bar).
    pub best_of: f64,
}

/// Figure 12a: suite speedups across SOS/Both × N policies at 600 cycles.
pub fn fig12a() -> Result<Vec<Fig12aRow>, SimError> {
    let base_sim = Simulator::new(SmConfig::turing_like(), SiConfig::disabled());
    let configs = si_configs();
    let mut rows = Vec::new();
    for t in suite() {
        let wl = t.build();
        let base = base_sim.run(&wl)?;
        let mut speedups = Vec::new();
        for (label, si) in &configs {
            let s = Simulator::new(SmConfig::turing_like(), *si).run(&wl)?;
            speedups.push((label.clone(), gain_pct(&s, &base)));
        }
        let best_of = speedups
            .iter()
            .map(|(_, g)| *g)
            .fold(f64::NEG_INFINITY, f64::max);
        rows.push(Fig12aRow {
            name: t.name.to_owned(),
            speedups,
            best_of,
        });
    }
    Ok(rows)
}

// -------------------------------------------------------------- Figure 12b

/// Per-trace exposed-stall reductions under the paper's best setting.
#[derive(Debug, Clone, PartialEq)]
pub struct Fig12bRow {
    /// Trace name.
    pub name: String,
    /// Reduction in total exposed load-to-use stalls (fraction, positive =
    /// reduced).
    pub total_reduction: f64,
    /// Reduction in divergent exposed load-to-use stalls.
    pub divergent_reduction: f64,
}

/// Figure 12b: stall reductions of `Both, N ≥ 0.5` vs baseline.
pub fn fig12b() -> Result<Vec<Fig12bRow>, SimError> {
    let base_sim = Simulator::new(SmConfig::turing_like(), SiConfig::disabled());
    let si_sim = Simulator::new(SmConfig::turing_like(), SiConfig::best());
    let mut rows = Vec::new();
    for t in suite() {
        let wl = t.build();
        let b = base_sim.run(&wl)?;
        let s = si_sim.run(&wl)?;
        rows.push(Fig12bRow {
            name: t.name.to_owned(),
            total_reduction: RunStats::reduction(s.exposed_load_stalls, b.exposed_load_stalls),
            divergent_reduction: RunStats::reduction(
                s.exposed_load_stalls_divergent,
                b.exposed_load_stalls_divergent,
            ),
        });
    }
    Ok(rows)
}

// --------------------------------------------------------------- Figure 13

/// Mean suite speedups per SI configuration at one miss latency.
#[derive(Debug, Clone, PartialEq)]
pub struct Fig13Row {
    /// L1 miss latency (300/600/900).
    pub latency: u64,
    /// `(config label, mean speedup %)`.
    pub means: Vec<(String, f64)>,
    /// Mean of per-trace best configurations.
    pub best_of: f64,
}

/// Figure 13: latency sensitivity sweep over {300, 600, 900} cycles.
pub fn fig13() -> Result<Vec<Fig13Row>, SimError> {
    let configs = si_configs();
    let mut rows = Vec::new();
    for lat in [300u64, 600, 900] {
        let sm = SmConfig::turing_like().with_miss_latency(lat);
        let base_sim = Simulator::new(sm.clone(), SiConfig::disabled());
        // gains[c][t]: config c's gain on trace t.
        let mut gains = vec![Vec::new(); configs.len()];
        let mut best = Vec::new();
        for t in suite() {
            let wl = t.build();
            let b = base_sim.run(&wl)?;
            let mut trace_best = f64::NEG_INFINITY;
            for (ci, (_, si)) in configs.iter().enumerate() {
                let g = gain_pct(&Simulator::new(sm.clone(), *si).run(&wl)?, &b);
                gains[ci].push(g);
                trace_best = trace_best.max(g);
            }
            best.push(trace_best);
        }
        rows.push(Fig13Row {
            latency: lat,
            means: configs
                .iter()
                .zip(&gains)
                .map(|((label, _), g)| (label.clone(), subwarp_stats::mean(g)))
                .collect(),
            best_of: subwarp_stats::mean(&best),
        });
    }
    Ok(rows)
}

// --------------------------------------------------------------- Figure 14

/// Per-trace SI speedups at one warp-slot budget, against an equally
/// throttled baseline.
#[derive(Debug, Clone, PartialEq)]
pub struct Fig14Row {
    /// Total SM warp slots (8/16/32).
    pub warp_slots: usize,
    /// `(trace, speedup %)`.
    pub gains: Vec<(String, f64)>,
    /// Suite mean.
    pub mean: f64,
}

/// Figure 14: warp-slot sensitivity (8/16/32 slots per SM).
pub fn fig14() -> Result<Vec<Fig14Row>, SimError> {
    let mut rows = Vec::new();
    for per_pb in [2usize, 4, 8] {
        let sm = SmConfig::turing_like().with_warp_slots_per_pb(per_pb);
        let base_sim = Simulator::new(sm.clone(), SiConfig::disabled());
        let si_sim = Simulator::new(sm.clone(), SiConfig::best());
        let mut gains: Vec<(String, f64)> = Vec::new();
        for t in suite() {
            let wl = t.build();
            let g = gain_pct(&si_sim.run(&wl)?, &base_sim.run(&wl)?);
            gains.push((t.name.to_owned(), g));
        }
        let mean = subwarp_stats::mean(&gains.iter().map(|(_, g)| *g).collect::<Vec<_>>());
        rows.push(Fig14Row {
            warp_slots: per_pb * 4,
            gains,
            mean,
        });
    }
    Ok(rows)
}

// --------------------------------------------------------------- Figure 15

/// Per-trace SI speedups at one thread-status-table capacity.
#[derive(Debug, Clone, PartialEq)]
pub struct Fig15Row {
    /// Maximum subwarps per warp (TST entries); 32 = unlimited.
    pub max_subwarps: usize,
    /// `(trace, speedup %)`.
    pub gains: Vec<(String, f64)>,
    /// Suite mean.
    pub mean: f64,
}

/// Figure 15: subwarps-per-warp sensitivity (2/4/6/unlimited).
pub fn fig15() -> Result<Vec<Fig15Row>, SimError> {
    let base_sim = Simulator::new(SmConfig::turing_like(), SiConfig::disabled());
    // Baselines are independent of TST capacity: compute once.
    let mut baselines: Vec<(String, RunStats, subwarp_core::Workload)> = Vec::new();
    for t in suite() {
        let wl = t.build();
        let b = base_sim.run(&wl)?;
        baselines.push((t.name.to_owned(), b, wl));
    }
    let mut rows = Vec::new();
    for n in [2usize, 4, 6, 32] {
        let si_sim = Simulator::new(
            SmConfig::turing_like(),
            SiConfig::best().with_max_subwarps(n),
        );
        let mut gains: Vec<(String, f64)> = Vec::new();
        for (name, b, wl) in &baselines {
            gains.push((name.clone(), gain_pct(&si_sim.run(wl)?, b)));
        }
        let mean = subwarp_stats::mean(&gains.iter().map(|(_, g)| *g).collect::<Vec<_>>());
        rows.push(Fig15Row {
            max_subwarps: n,
            gains,
            mean,
        });
    }
    Ok(rows)
}

// ------------------------------------------------------------ §V-C-4 icache

/// Instruction-cache sizing result (§V-C-4).
#[derive(Debug, Clone, PartialEq)]
pub struct IcacheResult {
    /// Mean SI gain with the paper's upsized caches (16 KB L0 / 64 KB L1I).
    pub big_mean: f64,
    /// Mean SI gain with 4× smaller caches (shipping-GPU-like).
    pub small_mean: f64,
}

/// §V-C-4: rerun the best setting with 4× smaller L0/L1 instruction caches.
pub fn icache() -> Result<IcacheResult, SimError> {
    let mean_gain = |sm: SmConfig| -> Result<f64, SimError> {
        let base_sim = Simulator::new(sm.clone(), SiConfig::disabled());
        let si_sim = Simulator::new(sm, SiConfig::best());
        let mut gains: Vec<f64> = Vec::new();
        for t in suite() {
            let wl = t.build();
            gains.push(gain_pct(&si_sim.run(&wl)?, &base_sim.run(&wl)?));
        }
        Ok(subwarp_stats::mean(&gains))
    };
    Ok(IcacheResult {
        big_mean: mean_gain(SmConfig::turing_like())?,
        small_mean: mean_gain(SmConfig::turing_like().with_small_icaches())?,
    })
}

// ------------------------------------------------------- order ablation §VI

/// Divergent-path execution-order ablation (§VI, limiter #3).
#[derive(Debug, Clone, PartialEq)]
pub struct OrderAblation {
    /// `(order label, mean SI gain %)`.
    pub means: Vec<(String, f64)>,
}

/// Sweeps which side of a divergent branch executes first, quantifying the
/// paper's observation that subwarp encounter order gates SI's value.
pub fn ablation_diverge_order() -> Result<OrderAblation, SimError> {
    let orders = [
        ("fallthrough-first", DivergeOrder::FallthroughFirst),
        ("taken-first", DivergeOrder::TakenFirst),
        ("random", DivergeOrder::Random),
        // §VI future work: compiler stall hints steer the order (the
        // megakernel generator annotates its dispatch branches).
        ("hinted", DivergeOrder::Hinted),
    ];
    let mut means = Vec::new();
    for (label, order) in orders {
        let mut sm = SmConfig::turing_like();
        sm.diverge_order = order;
        let base_sim = Simulator::new(sm.clone(), SiConfig::disabled());
        let si_sim = Simulator::new(sm, SiConfig::best());
        let mut gains: Vec<f64> = Vec::new();
        for t in suite() {
            let wl = t.build();
            gains.push(gain_pct(&si_sim.run(&wl)?, &base_sim.run(&wl)?));
        }
        means.push((label.to_string(), subwarp_stats::mean(&gains)));
    }
    Ok(OrderAblation { means })
}

// ---------------------------------------------------- DWS comparison §VII-B

/// SI vs a Dynamic-Warp-Subdivision-like scheme at one occupancy point.
#[derive(Debug, Clone, PartialEq)]
pub struct DwsRow {
    /// Warps launched (out of 32 slots).
    pub n_warps: usize,
    /// Subwarp Interleaving gain % (TST-hosted subwarps).
    pub si_gain: f64,
    /// DWS-like gain % (subwarps must fit in free warp slots).
    pub dws_gain: f64,
}

/// §VII-B: "our approach will perform better than DWS, especially when
/// there are few unused warp slots." Sweeps occupancy on the most
/// divergence-limited trace; DWS-like interleaving needs free slots, so its
/// gains collapse as the SM fills while SI's do not.
pub fn dws_comparison() -> Result<Vec<DwsRow>, SimError> {
    let trace = subwarp_workloads::trace_by_name("BFV1").expect("suite trace");
    let mut rows = Vec::new();
    for n in [8usize, 16, 24, 32] {
        let mut cfg = trace.config.clone();
        cfg.n_warps = n;
        let wl = cfg.build();
        let base = Simulator::new(SmConfig::turing_like(), SiConfig::disabled()).run(&wl)?;
        let si = Simulator::new(SmConfig::turing_like(), SiConfig::best()).run(&wl)?;
        let dws = Simulator::new(SmConfig::turing_like(), SiConfig::dws_like()).run(&wl)?;
        rows.push(DwsRow {
            n_warps: n,
            si_gain: gain_pct(&si, &base),
            dws_gain: gain_pct(&dws, &base),
        });
    }
    Ok(rows)
}

// -------------------------------------------- compute negative result §VI

/// SI's (lack of) effect on one non-raytracing compute kernel.
#[derive(Debug, Clone, PartialEq)]
pub struct ComputeRow {
    /// Kernel name.
    pub name: String,
    /// SI gain % (expected: within the margin of noise).
    pub gain: f64,
    /// Baseline exposed load-to-use stall ratio.
    pub exposed: f64,
    /// Divergent share of exposure.
    pub divergent: f64,
}

/// §VI: "We profiled a broad suite of more than 400 non-raytracing CUDA and
/// Direct3D compute kernels and found only 11 that feature long stalls in
/// divergent code, and none benefited beyond the margin of noise from SI."
/// Runs the archetype compute kernels and reports SI's (absent) effect.
pub fn compute_negative_result() -> Result<Vec<ComputeRow>, SimError> {
    let base_sim = Simulator::new(SmConfig::turing_like(), SiConfig::disabled());
    let si_sim = Simulator::new(SmConfig::turing_like(), SiConfig::best());
    let mut rows = Vec::new();
    for wl in subwarp_workloads::compute_suite() {
        let b = base_sim.run(&wl)?;
        let s = si_sim.run(&wl)?;
        rows.push(ComputeRow {
            name: wl.name.clone(),
            gain: gain_pct(&s, &b),
            exposed: b.exposed_ratio(),
            divergent: b.exposed_divergent_ratio(),
        });
    }
    Ok(rows)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn si_config_labels_cover_figure_12a_legend() {
        let labels: Vec<String> = si_configs().into_iter().map(|(l, _)| l).collect();
        assert_eq!(labels.len(), 6);
        assert!(labels.contains(&"SOS,N=1".to_string()));
        assert!(labels.contains(&"Both,N>=0.5".to_string()));
        assert!(labels.contains(&"Both,N>0".to_string()));
    }

    #[test]
    fn gain_pct_math() {
        let base = RunStats {
            cycles: 1063,
            ..Default::default()
        };
        let si = RunStats {
            cycles: 1000,
            ..Default::default()
        };
        assert!((gain_pct(&si, &base) - 6.3).abs() < 0.01);
    }
}
