//! Regenerates every table and figure of *GPU Subwarp Interleaving*
//! (HPCA 2022) and prints them as aligned tables and ASCII bar charts.
//!
//! ```text
//! figures [fig3|table3|fig10|fig12a|fig12b|fig13|fig14|fig15|icache|order|all|mem-sweep|chip-sweep|chaos]
//!         [--csv DIR] [--resume] [--journal PATH] [--deadline SECS] [--attempts N]
//!         [--max-holes N] [--trace FILE]...
//! ```
//!
//! `--trace FILE` (repeatable) loads serialized `subwarp-trace` workloads
//! and renders the Figure 12a-style speedup report over *those* files
//! instead of the built-in suite (selected as the `trace` figure, which is
//! the default when only `--trace` flags are given). Cells are journaled
//! under the trace content fingerprint, so `--resume` works across
//! processes as long as the file bytes are unchanged.
//!
//! `mem-sweep` (the hierarchical-memory-backend sensitivity study) and
//! `chip-sweep` (SI gain vs SM count on shared L2/DRAM partitions, the
//! paper's Sec. VI limiter) go beyond the paper and are not part of `all`,
//! which regenerates exactly the paper's figures on the paper's
//! fixed-latency model.
//!
//! ## Fault tolerance
//!
//! A failing figure no longer aborts the run: it prints a
//! `FAILED(<figure>): <error>` marker, the remaining figures still render,
//! and the process exits nonzero at the end. `--resume` (optionally with
//! `--journal PATH`, default `results/figures_journal.jsonl`) checkpoints
//! every completed sweep cell to a JSONL journal so an interrupted run can
//! be relaunched and finish byte-identically without re-simulating
//! completed cells. `--deadline SECS` bounds each sweep cell's wall-clock
//! time and `--attempts N` retries failed cells. `chaos` runs a small
//! sweep with deterministically injected panics, errors, delays, and
//! dropped memory fills to smoke-test exactly this machinery.
//!
//! `--max-holes N` draws the line between degraded and broken: figure
//! failures that are fully accounted for by labeled sweep holes are
//! tolerated up to a budget of N holes total (exit 0); any failure *not*
//! backed by holes — a logic error rather than a faulted cell — or a hole
//! count above the budget still exits nonzero.

use std::fmt::Write as _;
use std::sync::Arc;
use std::time::Duration;
use subwarp_bench as x;
use subwarp_core::SimError;
use subwarp_stats::{mean, BarChart, Table};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut which: Vec<&str> = Vec::new();
    let mut csv_dir: Option<String> = None;
    let mut resume = false;
    let mut journal_path: Option<String> = None;
    let mut deadline_secs: Option<u64> = None;
    let mut attempts: u32 = 1;
    let mut max_holes: Option<usize> = None;
    let mut trace_files: Vec<String> = Vec::new();
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--csv" => csv_dir = it.next().cloned().or(Some("results".into())),
            "--trace" => match it.next() {
                Some(f) => trace_files.push(f.clone()),
                None => {
                    eprintln!("--trace needs a file path");
                    std::process::exit(2);
                }
            },
            "--resume" => resume = true,
            "--journal" => journal_path = it.next().cloned(),
            "--max-holes" => {
                max_holes = it.next().and_then(|s| s.parse().ok()).or_else(|| {
                    eprintln!("--max-holes needs a non-negative integer");
                    std::process::exit(2);
                })
            }
            "--deadline" => {
                deadline_secs = it.next().and_then(|s| s.parse().ok()).or_else(|| {
                    eprintln!("--deadline needs a positive integer of seconds");
                    std::process::exit(2);
                })
            }
            "--attempts" => {
                attempts = it
                    .next()
                    .and_then(|s| s.parse().ok())
                    .filter(|&n| n >= 1)
                    .unwrap_or_else(|| {
                        eprintln!("--attempts needs a positive integer");
                        std::process::exit(2);
                    })
            }
            other => which.push(other),
        }
    }
    if resume || journal_path.is_some() || deadline_secs.is_some() || attempts > 1 {
        let mut policy = x::SweepPolicy {
            deadline: deadline_secs.map(Duration::from_secs),
            max_attempts: attempts,
            ..x::SweepPolicy::default()
        };
        if resume || journal_path.is_some() {
            let path = journal_path
                .clone()
                .unwrap_or_else(|| "results/figures_journal.jsonl".into());
            match x::Journal::open(&path) {
                Ok(j) => {
                    eprintln!("journal: {path} ({} cells restored)", j.restored());
                    policy.journal = Some(Arc::new(j));
                }
                Err(e) => {
                    eprintln!("cannot open journal {path}: {e}");
                    std::process::exit(2);
                }
            }
        }
        x::install_global_policy(policy);
    }
    if which.is_empty() && !trace_files.is_empty() {
        which = vec!["trace"];
    } else if which.is_empty() || which.contains(&"all") {
        which = vec![
            "fig3", "table3", "fig10", "fig12a", "fig12b", "fig13", "fig14", "fig15", "icache",
            "order", "dws", "compute",
        ];
    }
    if which.contains(&"trace") && trace_files.is_empty() {
        eprintln!("the `trace` figure needs at least one --trace FILE");
        std::process::exit(2);
    }
    let mut csvs: Vec<(String, String)> = Vec::new();
    let mut failed: Vec<(String, usize)> = Vec::new();
    for w in which {
        let holes_before = x::holes_observed();
        let result = match w {
            "fig3" => fig3(&mut csvs),
            "table3" => table3(&mut csvs),
            "fig10" => fig10(),
            "fig12a" => fig12a(&mut csvs),
            "fig12b" => fig12b(&mut csvs),
            "fig13" => fig13(&mut csvs),
            "fig14" => fig14(&mut csvs),
            "fig15" => fig15(&mut csvs),
            "icache" => icache(&mut csvs),
            "order" => order(&mut csvs),
            "dws" => dws(&mut csvs),
            "compute" => compute(&mut csvs),
            "mem-sweep" => mem_sweep(&mut csvs),
            "chip-sweep" => chip_sweep(&mut csvs),
            "chaos" => chaos(),
            "trace" => trace_figure(&trace_files, &mut csvs),
            other => {
                eprintln!("unknown figure `{other}`");
                std::process::exit(2);
            }
        };
        if let Err(e) = result {
            println!("FAILED({w}): {e}");
            failed.push((w.to_string(), x::holes_observed() - holes_before));
        }
        println!();
    }
    if let Some(dir) = csv_dir {
        std::fs::create_dir_all(&dir).expect("create csv dir");
        for (name, content) in csvs {
            let path = format!("{dir}/{name}.csv");
            std::fs::write(&path, content).expect("write csv");
            eprintln!("wrote {path}");
        }
    }
    if !failed.is_empty() {
        let names: Vec<&str> = failed.iter().map(|(w, _)| w.as_str()).collect();
        eprintln!("{} figure(s) failed: {}", failed.len(), names.join(", "));
        let Some(budget) = max_holes else {
            std::process::exit(1);
        };
        // Graceful degradation has a precise meaning: a failure is
        // tolerable only when it is fully explained by labeled sweep holes
        // (faulted/timed-out cells), and only within the hole budget. A
        // failure with *zero* new holes is a logic error wearing a fault's
        // clothes — never tolerated.
        let unbacked: Vec<&str> = failed
            .iter()
            .filter(|(_, holes)| *holes == 0)
            .map(|(w, _)| w.as_str())
            .collect();
        if !unbacked.is_empty() {
            eprintln!(
                "failure(s) not backed by sweep holes ({}): refusing to tolerate",
                unbacked.join(", ")
            );
            std::process::exit(1);
        }
        let total = x::holes_observed();
        if total > budget {
            eprintln!("{total} sweep hole(s) exceed --max-holes {budget}");
            std::process::exit(1);
        }
        eprintln!("tolerating {total} sweep hole(s) within --max-holes {budget}; exiting 0");
    }
}

fn banner(s: &str) {
    println!("==== {s} ====");
}

/// Figure 12a-style speedup report over `--trace` files.
fn trace_figure(files: &[String], csvs: &mut Vec<(String, String)>) -> Result<(), SimError> {
    banner("Trace files: speedup over baseline at 600-cycle miss latency");
    let loaded: Result<Vec<x::LoadedTrace>, SimError> =
        files.iter().map(|f| x::load_trace_file(f)).collect();
    let loaded = loaded?;
    for (name, wl, fp) in &loaded {
        eprintln!(
            "# {name}: `{}`, {} instructions, {} warps, fingerprint {fp:#018x}",
            wl.name,
            wl.program.len(),
            wl.n_warps
        );
    }
    let rows = x::trace_report(&loaded)?;
    let labels: Vec<String> = rows[0].speedups.iter().map(|(l, _)| l.clone()).collect();
    let mut header = vec!["trace".to_string()];
    header.extend(labels.iter().cloned());
    header.push("BestOf".into());
    let mut t = Table::new(header);
    for r in &rows {
        let mut cells = vec![r.name.clone()];
        for (_, g) in &r.speedups {
            cells.push(format!("{g:.1}%"));
        }
        cells.push(format!("{:.1}%", r.best_of));
        t.row(cells);
    }
    println!("{t}");
    csvs.push(("trace_report".into(), t.to_csv()));
    Ok(())
}

/// Runs the chaos-smoke sweep: deterministically injected panics, errors,
/// over-deadline delays, and dropped memory fills, each surfacing as a
/// labeled `FAILED(<cell>)` hole while healthy cells complete. Fails (so
/// the process exits nonzero) whenever the grid has holes — which, with
/// these injected faults, is always.
fn chaos() -> Result<(), SimError> {
    banner("Chaos smoke: supervised sweep under injected faults");
    let (sweep, policy) = x::chaos_sweep();
    // The injected panics are expected: silence their backtraces so the
    // smoke output stays readable. catch_unwind still captures payloads.
    let default_hook = std::panic::take_hook();
    std::panic::set_hook(Box::new(|_| {}));
    let grid = sweep.run_resilient(&policy);
    std::panic::set_hook(default_hook);
    let first_line = |s: String| s.lines().next().unwrap_or_default().to_owned();
    let workloads: Vec<&str> = sweep.workload_names().collect();
    let configs: Vec<&str> = sweep.config_labels().collect();
    let mut t = Table::new(vec!["cell".into(), "outcome".into()]);
    for (w, wname) in workloads.iter().enumerate() {
        for (c, cname) in configs.iter().enumerate() {
            let outcome = match grid.cell(w, c) {
                Ok(stats) => format!("ok ({} cycles)", stats.cycles),
                Err(e) => {
                    let cause = first_line(e.cause.to_string());
                    println!("FAILED({wname}/{cname}): {cause}");
                    format!("FAILED: {cause}")
                }
            };
            t.row(vec![format!("{wname}/{cname}"), outcome]);
        }
    }
    println!("{t}");
    let holes = grid.holes();
    println!(
        "{} of {} cells completed; {} labeled holes",
        grid.completed(),
        sweep.len(),
        holes.len()
    );
    match holes.into_iter().next() {
        None => Ok(()),
        Some(first) => Err(x::job_error_to_sim(first.clone())),
    }
}

fn fig3(csvs: &mut Vec<(String, String)>) -> Result<(), SimError> {
    banner("Figure 3: exposed load-to-use stalls, normalized to kernel time (baseline)");
    let rows = x::fig3()?;
    let mut t = Table::new(vec!["trace".into(), "total".into(), "divergent".into()]);
    let mut chart = BarChart::new(
        "stalls / kernel time",
        vec![
            "total exposed load-to-use".into(),
            "in divergent code blocks".into(),
        ],
    )
    .unit("%");
    let (mut tot, mut div) = (Vec::new(), Vec::new());
    for r in &rows {
        t.row(vec![r.name.clone(), pct(r.total), pct(r.divergent)]);
        chart.group(r.name.clone(), vec![r.total * 100.0, r.divergent * 100.0]);
        tot.push(r.total);
        div.push(r.divergent);
    }
    t.row(vec!["mean".into(), pct(mean(&tot)), pct(mean(&div))]);
    println!("{t}\n{chart}");
    csvs.push(("fig3".into(), t.to_csv()));
    Ok(())
}

fn table3(csvs: &mut Vec<(String, String)>) -> Result<(), SimError> {
    banner("Table III: microbenchmark speedup vs divergence factor (600-cycle miss)");
    let rows = x::table3(16)?;
    let mut t = Table::new(vec![
        "SUBWARP_SIZE".into(),
        "divergence factor".into(),
        "speedup (x)".into(),
        "SI fetch-stall %".into(),
    ]);
    for r in &rows {
        t.row(vec![
            r.subwarp_size.to_string(),
            r.divergence_factor.to_string(),
            format!("{:.2}", r.speedup),
            pct(r.si_fetch_ratio),
        ]);
    }
    println!("{t}");
    println!("(paper: 1.98 / 3.95 / 7.84 / 15.22 / 12.66 — near-linear, tapering at 32-way)");
    csvs.push(("table3".into(), t.to_csv()));
    Ok(())
}

fn fig10() -> Result<(), SimError> {
    banner("Figure 10: TST operation on the Figure 9 toy (two 1-thread subwarps)");
    let ((sa, ra), (sb, rb)) = x::fig10()?;
    for (tag, stats, rec) in [
        ("10a (without yield)", sa, ra),
        ("10b (with yield)", sb, rb),
    ] {
        println!("--- {tag}: {} cycles ---", stats.cycles);
        let mut t = Table::new(vec![
            "cycle".into(),
            "event".into(),
            "mask".into(),
            "pc".into(),
        ]);
        for e in rec.events() {
            t.row(vec![
                e.cycle.to_string(),
                format!("{:?}", e.kind),
                format!("{:#04b}", e.mask),
                e.pc.to_string(),
            ]);
        }
        println!("{t}");
    }
    Ok(())
}

fn fig12a(csvs: &mut Vec<(String, String)>) -> Result<(), SimError> {
    banner("Figure 12a: speedup over baseline at 600-cycle miss latency");
    let rows = x::fig12a()?;
    let labels: Vec<String> = rows[0].speedups.iter().map(|(l, _)| l.clone()).collect();
    let mut header = vec!["trace".to_string()];
    header.extend(labels.iter().cloned());
    header.push("BestOf".into());
    let mut t = Table::new(header);
    let mut means = vec![Vec::new(); labels.len()];
    let mut best = Vec::new();
    for r in &rows {
        let mut cells = vec![r.name.clone()];
        for (i, (_, g)) in r.speedups.iter().enumerate() {
            cells.push(format!("{g:.1}%"));
            means[i].push(*g);
        }
        cells.push(format!("{:.1}%", r.best_of));
        best.push(r.best_of);
        t.row(cells);
    }
    let mut mean_cells = vec!["mean".to_string()];
    for m in &means {
        mean_cells.push(format!("{:.1}%", mean(m)));
    }
    mean_cells.push(format!("{:.1}%", mean(&best)));
    t.row(mean_cells);
    println!("{t}");
    let mut chart = BarChart::new(
        "speedup % (Both,N>=0.5 vs BestOf)",
        vec!["Both,N>=0.5".into(), "BestOf".into()],
    )
    .unit("%");
    for r in &rows {
        let both_half = r
            .speedups
            .iter()
            .find(|(l, _)| l == "Both,N>=0.5")
            .map(|(_, g)| *g)
            .unwrap_or(0.0);
        chart.group(r.name.clone(), vec![both_half, r.best_of]);
    }
    println!("{chart}");
    println!("(paper: best single setting Both,N>=0.5 averages 6.3%; BestOf mean 6.6%)");
    csvs.push(("fig12a".into(), t.to_csv()));
    Ok(())
}

fn fig12b(csvs: &mut Vec<(String, String)>) -> Result<(), SimError> {
    banner("Figure 12b: reduction in exposed load-to-use stalls (Both,N>=0.5)");
    let rows = x::fig12b()?;
    let mut t = Table::new(vec![
        "trace".into(),
        "total reduction".into(),
        "divergent reduction".into(),
    ]);
    let (mut tot, mut div) = (Vec::new(), Vec::new());
    for r in &rows {
        t.row(vec![
            r.name.clone(),
            pct(r.total_reduction),
            pct(r.divergent_reduction),
        ]);
        tot.push(r.total_reduction);
        div.push(r.divergent_reduction);
    }
    t.row(vec!["mean".into(), pct(mean(&tot)), pct(mean(&div))]);
    println!("{t}");
    println!("(paper: divergent stalls drop 26.5% on average; total ~10.5%)");
    csvs.push(("fig12b".into(), t.to_csv()));
    Ok(())
}

fn fig13(csvs: &mut Vec<(String, String)>) -> Result<(), SimError> {
    banner("Figure 13: average speedup vs L1 miss latency");
    let rows = x::fig13()?;
    let labels: Vec<String> = rows[0].means.iter().map(|(l, _)| l.clone()).collect();
    let mut header = vec!["latency".to_string()];
    header.extend(labels.iter().cloned());
    header.push("BestOf".into());
    let mut t = Table::new(header);
    for r in &rows {
        let mut cells = vec![format!("lat{}", r.latency)];
        for (_, m) in &r.means {
            cells.push(format!("{m:.1}%"));
        }
        cells.push(format!("{:.1}%", r.best_of));
        t.row(cells);
    }
    println!("{t}");
    println!("(paper BestOf: 4.2% / 6.6% / 7.6% at 300/600/900 cycles)");
    csvs.push(("fig13".into(), t.to_csv()));
    Ok(())
}

fn fig14(csvs: &mut Vec<(String, String)>) -> Result<(), SimError> {
    banner("Figure 14: sensitivity to warp slots (vs equally-throttled baselines)");
    let rows = x::fig14()?;
    let mut header = vec!["trace".to_string()];
    for r in &rows {
        header.push(format!("{} warps", r.warp_slots));
    }
    let mut t = Table::new(header);
    let names: Vec<String> = rows[0].gains.iter().map(|(n, _)| n.clone()).collect();
    for (i, name) in names.iter().enumerate() {
        let mut cells = vec![name.clone()];
        for r in &rows {
            cells.push(format!("{:.1}%", r.gains[i].1));
        }
        t.row(cells);
    }
    let mut mean_cells = vec!["mean".to_string()];
    for r in &rows {
        mean_cells.push(format!("{:.1}%", r.mean));
    }
    t.row(mean_cells);
    println!("{t}");
    println!("(paper means: 5.1% / 5.7% / 6.3% at 8/16/32 warp slots)");
    csvs.push(("fig14".into(), t.to_csv()));
    Ok(())
}

fn fig15(csvs: &mut Vec<(String, String)>) -> Result<(), SimError> {
    banner("Figure 15: sensitivity to subwarps per warp (32 peak warps)");
    let rows = x::fig15()?;
    let mut header = vec!["trace".to_string()];
    for r in &rows {
        header.push(if r.max_subwarps == 32 {
            "unlimited".into()
        } else {
            format!("{} subwarps", r.max_subwarps)
        });
    }
    let mut t = Table::new(header);
    let names: Vec<String> = rows[0].gains.iter().map(|(n, _)| n.clone()).collect();
    for (i, name) in names.iter().enumerate() {
        let mut cells = vec![name.clone()];
        for r in &rows {
            cells.push(format!("{:.1}%", r.gains[i].1));
        }
        t.row(cells);
    }
    let mut mean_cells = vec!["mean".to_string()];
    for r in &rows {
        mean_cells.push(format!("{:.1}%", r.mean));
    }
    t.row(mean_cells);
    println!("{t}");
    println!("(paper: 2 subwarps capture 4.2%; 4 subwarps 5.2% = 82% of unlimited's 6.3%)");
    csvs.push(("fig15".into(), t.to_csv()));
    Ok(())
}

fn icache(csvs: &mut Vec<(String, String)>) -> Result<(), SimError> {
    banner("Section V-C-4: instruction cache sizing");
    let r = x::icache()?;
    let mut t = Table::new(vec!["configuration".into(), "mean speedup".into()]);
    t.row(vec![
        "16KB L0I / 64KB L1I (paper baseline)".into(),
        format!("{:.1}%", r.big_mean),
    ]);
    t.row(vec![
        "4KB L0I / 16KB L1I (4x smaller)".into(),
        format!("{:.1}%", r.small_mean),
    ]);
    println!("{t}");
    println!(
        "(paper: 4x smaller caches keep ~70% of the upside: 4.5% vs 6.3%; here {:.0}%)",
        if r.big_mean.abs() > 1e-9 {
            r.small_mean / r.big_mean * 100.0
        } else {
            0.0
        }
    );
    csvs.push(("icache".into(), {
        let mut s = String::new();
        let _ = writeln!(s, "config,mean_speedup_pct");
        let _ = writeln!(s, "big,{:.3}", r.big_mean);
        let _ = writeln!(s, "small,{:.3}", r.small_mean);
        s
    }));
    Ok(())
}

fn order(csvs: &mut Vec<(String, String)>) -> Result<(), SimError> {
    banner("Ablation (paper §VI limiter #3): divergent-path execution order");
    let r = x::ablation_diverge_order()?;
    let mut t = Table::new(vec!["order".into(), "mean speedup".into()]);
    for (label, m) in &r.means {
        t.row(vec![label.clone(), format!("{m:.1}%")]);
    }
    println!("{t}");
    println!("(paper: execution order gates SI; randomization improves the odds of a");
    println!(" profitable dynamic subwarp schedule)");
    csvs.push(("order".into(), t.to_csv()));
    Ok(())
}

fn dws(csvs: &mut Vec<(String, String)>) -> Result<(), SimError> {
    banner("Comparison (paper SVII-B): SI vs Dynamic-Warp-Subdivision-like forking");
    let rows = x::dws_comparison()?;
    let mut t = Table::new(vec![
        "warps resident (of 32 slots)".into(),
        "SI gain".into(),
        "DWS-like gain".into(),
    ]);
    for r in &rows {
        t.row(vec![
            r.n_warps.to_string(),
            format!("{:.1}%", r.si_gain),
            format!("{:.1}%", r.dws_gain),
        ]);
    }
    println!("{t}");
    println!("(paper SVII-B: DWS forks subwarps into unused warp slots, so it degrades");
    println!(" as occupancy rises; SI hosts subwarps in the TST and keeps working)");
    csvs.push(("dws".into(), t.to_csv()));
    Ok(())
}

fn compute(csvs: &mut Vec<(String, String)>) -> Result<(), SimError> {
    banner("Negative result (paper SVI): SI on non-raytracing compute kernels");
    let rows = x::compute_negative_result()?;
    let mut t = Table::new(vec![
        "kernel".into(),
        "SI gain".into(),
        "baseline l2u%".into(),
        "divergent%".into(),
    ]);
    for r in &rows {
        t.row(vec![
            r.name.clone(),
            format!("{:+.1}%", r.gain),
            pct(r.exposed),
            pct(r.divergent),
        ]);
    }
    println!("{t}");
    println!("(paper SVI: of 400+ compute kernels, only 11 had long stalls in divergent");
    println!(" code, and none benefited beyond the margin of noise from SI)");
    csvs.push(("compute".into(), t.to_csv()));
    Ok(())
}

fn mem_sweep(csvs: &mut Vec<(String, String)>) -> Result<(), SimError> {
    banner("Memory-hierarchy sweep: SI gain vs measured miss latency and DRAM bandwidth");
    let r = x::mem_sweep()?;
    let mut csv = String::new();
    let _ = writeln!(
        csv,
        "axis,label,mean_fill_latency,mean_gain_pct,l2_hit_rate,channel_utilization"
    );
    for (axis, rows) in [("latency", &r.latency), ("bandwidth", &r.bandwidth)] {
        let mut t = Table::new(vec![
            "variant".into(),
            "mean fill latency".into(),
            "SI gain".into(),
            "L2 hit rate".into(),
            "chan util".into(),
        ]);
        for row in rows {
            t.row(vec![
                row.label.clone(),
                format!("{:.0} cy", row.mean_fill_latency),
                format!("{:.1}%", row.mean_gain_pct),
                pct(row.l2_hit_rate),
                pct(row.channel_utilization),
            ]);
            let _ = writeln!(
                csv,
                "{axis},{},{:.1},{:.3},{:.4},{:.4}",
                row.label,
                row.mean_fill_latency,
                row.mean_gain_pct,
                row.l2_hit_rate,
                row.channel_utilization
            );
        }
        println!("--- {axis} axis ---\n{t}");
    }
    println!("(Figure 13's trend, re-asked with load-dependent latency: SI's upside");
    println!(" grows with the fill latency it hides; shrinking channel bandwidth");
    println!(" converts latency tolerance into bandwidth contention)");
    csvs.push(("mem_sweep".into(), csv));
    Ok(())
}

fn chip_sweep(csvs: &mut Vec<(String, String)>) -> Result<(), SimError> {
    banner("Chip sweep: SI gain vs SM count on shared L2/DRAM partitions (Sec. VI)");
    let rows = x::chip_sweep()?;
    let mut csv = String::new();
    let _ = writeln!(
        csv,
        "n_sms,base_cycles,gain_pct,l2_hit_rate,channel_utilization,mean_fill_latency"
    );
    let mut t = Table::new(vec![
        "SMs".into(),
        "base cycles".into(),
        "SI gain".into(),
        "L2 hit rate".into(),
        "chan util".into(),
        "mean fill".into(),
    ]);
    for row in &rows {
        t.row(vec![
            row.n_sms.to_string(),
            row.base_cycles.to_string(),
            format!("{:.1}%", row.gain_pct),
            pct(row.l2_hit_rate),
            pct(row.channel_utilization),
            format!("{:.0} cy", row.mean_fill_latency),
        ]);
        let _ = writeln!(
            csv,
            "{},{},{:.3},{:.4},{:.4},{:.1}",
            row.n_sms,
            row.base_cycles,
            row.gain_pct,
            row.l2_hit_rate,
            row.channel_utilization,
            row.mean_fill_latency
        );
    }
    println!("{t}");
    println!("(weak scaling: every SM runs the same per-SM slice of the divergent");
    println!(" microbenchmark against one fixed TU102-like set of partitions — as");
    println!(" the shared channels saturate, SI's extra MLP has nowhere to go and");
    println!(" its gain erodes: the paper's Sec. VI limiter at chip scale)");
    csvs.push(("chip_sweep".into(), csv));
    Ok(())
}

fn pct(x: f64) -> String {
    format!("{:.1}%", x * 100.0)
}
