//! Profile one workload: emit a Chrome trace-event / Perfetto JSON timeline
//! and print a Figure-5-style cycle-attribution breakdown.
//!
//! ```text
//! profile [options] <workload>
//!
//! workloads:
//!   trace:<NAME>          a suite trace (AV1, BFV1, Coll1, ...)
//!   micro:<SUBWARP_SIZE>  the Figure 11 microbenchmark
//!   toy                   the Figure 9 two-subwarp toy
//!
//! options:
//!   --trace <FILE>            load the workload from a serialized
//!                             subwarp-trace file instead of a built-in
//!   --si <off|sos|both|dws>   interleaving mode          [default: off]
//!   --policy <any|half|all>   stall trigger (N>0/≥0.5/1) [default: half]
//!   --latency <cycles>        L1 miss latency            [default: 600]
//!   --mem <fixed|hier>        memory backend             [default: fixed]
//!   --sms <n>                 streaming multiprocessors  [default: 1]
//!   --out <path>              trace output file          [default: subwarp_profile.json]
//!   --compare                 also profile-free run the baseline and
//!                             print its breakdown column
//! ```
//!
//! Load the emitted JSON in <https://ui.perfetto.dev> (or `chrome://tracing`):
//! each SM is a process with per-warp subwarp-activity tracks, cycle
//! attribution tracks (SM-level and per processing block), and counter
//! tracks for LSU/TEX/RT occupancy and cache hit rates. With `--mem hier`
//! the trace gains L2-hit-rate, MSHR-occupancy, and DRAM-busy-channel
//! tracks, and the breakdown is followed by the memory-hierarchy counters.
//! Time is encoded as 1 cycle = 1 µs.

use subwarp_core::{
    ChromeTraceProfiler, CycleCause, HierarchyConfig, MemBackendConfig, RunStats, SelectPolicy,
    SiConfig, Simulator, SmConfig, Workload,
};
use subwarp_stats::Table;
use subwarp_workloads::{figure9_workload, microbenchmark, trace_by_name};

fn usage() -> ! {
    eprintln!(
        "usage: profile [--si off|sos|both|dws] [--policy any|half|all] \
         [--latency N] [--mem fixed|hier] [--sms N] [--out PATH] [--compare] \
         <trace:NAME|micro:SIZE|toy|--trace FILE>"
    );
    std::process::exit(2);
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut sm = SmConfig::turing_like();
    let mut si = SiConfig::disabled();
    let mut policy = SelectPolicy::HalfStalled;
    let mut si_kind = "off".to_owned();
    let mut out = String::from("subwarp_profile.json");
    let mut compare = false;
    let mut target: Option<String> = None;
    let mut trace_file: Option<String> = None;

    let mut it = args.iter();
    while let Some(a) = it.next() {
        let mut next = |flag: &str| -> String {
            it.next().cloned().unwrap_or_else(|| {
                eprintln!("{flag} needs a value");
                usage()
            })
        };
        match a.as_str() {
            "--si" => si_kind = next("--si"),
            "--policy" => {
                policy = match next("--policy").as_str() {
                    "any" => SelectPolicy::AnyStalled,
                    "half" => SelectPolicy::HalfStalled,
                    "all" => SelectPolicy::AllStalled,
                    _ => usage(),
                }
            }
            "--latency" => sm.miss_latency = next("--latency").parse().unwrap_or_else(|_| usage()),
            "--mem" => {
                sm.mem_backend = match next("--mem").as_str() {
                    "fixed" => MemBackendConfig::Fixed,
                    "hier" => MemBackendConfig::Hierarchical(HierarchyConfig::turing_like()),
                    _ => usage(),
                }
            }
            "--sms" => sm.n_sms = next("--sms").parse().unwrap_or_else(|_| usage()),
            "--out" => out = next("--out"),
            "--trace" => trace_file = Some(next("--trace")),
            "--compare" => compare = true,
            "--help" | "-h" => usage(),
            other if !other.starts_with('-') => target = Some(other.to_owned()),
            _ => usage(),
        }
    }
    match si_kind.as_str() {
        "off" => {}
        "sos" => si = SiConfig::sos(policy),
        "both" => si = SiConfig::both(policy),
        "dws" => {
            si = SiConfig::dws_like();
            si.policy = policy;
        }
        _ => usage(),
    }

    let wl: Workload = if let Some(path) = trace_file {
        if target.is_some() {
            eprintln!("--trace replaces the workload argument; give one or the other");
            std::process::exit(2);
        }
        let bytes = std::fs::read(&path).unwrap_or_else(|e| {
            eprintln!("cannot read trace file `{path}`: {e}");
            std::process::exit(2);
        });
        match subwarp_trace::decode_workload(&bytes) {
            Ok(wl) => {
                eprintln!(
                    "# trace file {path}: fingerprint {:#018x}",
                    subwarp_trace::trace_fingerprint(&bytes)
                );
                wl
            }
            Err(e) => {
                eprintln!("cannot load trace `{path}`: {e}");
                std::process::exit(2);
            }
        }
    } else {
        let Some(target) = target else { usage() };
        if let Some(name) = target.strip_prefix("trace:") {
            match trace_by_name(name) {
                Some(t) => {
                    eprintln!("# {}: {}", t.name, t.description);
                    t.build()
                }
                None => {
                    eprintln!("unknown trace `{name}`");
                    std::process::exit(2);
                }
            }
        } else if let Some(size) = target.strip_prefix("micro:") {
            microbenchmark(size.parse().unwrap_or_else(|_| usage()), 16)
        } else if target == "toy" {
            figure9_workload()
        } else {
            usage()
        }
    };

    let fail = |e: subwarp_core::SimError| -> ! {
        eprintln!("simulation failed: {e}");
        std::process::exit(1);
    };
    eprintln!(
        "# profiling `{}` under SI={} (miss latency {})",
        wl.name,
        si.label(),
        sm.miss_latency
    );
    let mut profiler = ChromeTraceProfiler::new();
    let stats = Simulator::new(sm.clone(), si)
        .run_profiled(&wl, &mut profiler)
        .unwrap_or_else(|e| fail(e));
    let json = profiler.to_json();
    if let Err(e) = std::fs::write(&out, &json) {
        eprintln!("cannot write {out}: {e}");
        std::process::exit(1);
    }
    eprintln!(
        "# wrote {out} ({} events, {} bytes) - load it at https://ui.perfetto.dev",
        profiler.event_count(),
        json.len()
    );

    let base = compare.then(|| {
        Simulator::new(sm, SiConfig::disabled())
            .run(&wl)
            .unwrap_or_else(|e| fail(e))
    });

    // Figure-5-style breakdown: cycles per cause and share of kernel time.
    let mut header = vec![
        "cause".to_owned(),
        format!("cycles ({})", si.label()),
        "share".to_owned(),
    ];
    if base.is_some() {
        header.push("cycles (baseline)".to_owned());
        header.push("share".to_owned());
    }
    let mut table = Table::new(header);
    let share = |r: &RunStats, c: CycleCause| {
        let denom = r.causes_total().max(1);
        format!("{:5.1}%", r.cause(c) as f64 * 100.0 / denom as f64)
    };
    for cause in CycleCause::ALL {
        let mut row = vec![
            cause.label().to_owned(),
            stats.cause(cause).to_string(),
            share(&stats, cause),
        ];
        if let Some(b) = &base {
            row.push(b.cause(cause).to_string());
            row.push(share(b, cause));
        }
        table.row(row);
    }
    let mut total_row = vec![
        "total".to_owned(),
        stats.causes_total().to_string(),
        "100.0%".to_owned(),
    ];
    if let Some(b) = &base {
        total_row.push(b.causes_total().to_string());
        total_row.push("100.0%".to_owned());
    }
    table.row(total_row);
    println!("{table}");
    print_mem_stats(&stats);
    if let Some(b) = &base {
        println!(
            "speedup vs baseline: {:+.1}%  (cycles {} -> {})",
            (stats.speedup_vs(b) - 1.0) * 100.0,
            b.cycles,
            stats.cycles
        );
    }
}

/// Appends the memory-backend counters to the breakdown: one summary line
/// for the fixed stub, the full hierarchy picture for `--mem hier`.
fn print_mem_stats(stats: &RunStats) {
    let mem = &stats.mem;
    if mem.requests == 0 {
        return;
    }
    if mem.channel_busy_cycles.is_empty() {
        println!(
            "memory backend: fixed stub — {} fills at {:.0} cycles each",
            mem.fills,
            mem.mean_fill_latency()
        );
        return;
    }
    println!("memory backend: L2+MSHR+DRAM hierarchy");
    println!(
        "  fills {} (merges {}), mean fill latency {:.0} cycles",
        mem.fills,
        mem.mshr_merges,
        mem.mean_fill_latency()
    );
    println!(
        "  L2 hit rate {:.1}% ({} hits / {} accesses)",
        (1.0 - mem.l2.miss_ratio()) * 100.0,
        mem.l2.hits,
        mem.l2.accesses()
    );
    println!("  MSHR high-water {} entries", mem.mshr_high_water);
    println!(
        "  DRAM row hits {:.1}% ({} / {})",
        if mem.row_hits + mem.row_misses == 0 {
            0.0
        } else {
            mem.row_hits as f64 * 100.0 / (mem.row_hits + mem.row_misses) as f64
        },
        mem.row_hits,
        mem.row_hits + mem.row_misses
    );
    let util: Vec<String> = mem
        .channel_utilization(stats.sm_cycles_total.max(1))
        .iter()
        .map(|u| format!("{:.1}%", u * 100.0))
        .collect();
    println!("  DRAM channel utilization [{}]", util.join(", "));
}
