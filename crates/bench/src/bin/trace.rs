//! Trace tooling: record, replay, import, and validate serialized
//! workloads.
//!
//! ```text
//! trace record <workload> --out FILE
//! trace replay FILE [--verify-against <workload>]
//! trace import FILE [--out FILE] [--lossy]
//! trace validate FILE... [--write-expect]
//!
//! workloads (same vocabulary as the simulate binary, plus fuzz seeds):
//!   trace:<NAME>          a suite trace (AV1, BFV1, Coll1, ...)
//!   micro:<SIZE>[@ITERS]  the Figure 11 microbenchmark
//!   toy                   the Figure 9 two-subwarp toy
//!   fuzz:<SEED>           the differential fuzzer's generated kernel
//! ```
//!
//! `record` serializes a built-in workload to the versioned binary trace
//! format. `replay` loads a trace and prints its replay digest (reference
//! configurations × cycles/instructions/image/stats hashes); with
//! `--verify-against` it additionally rebuilds the named workload in
//! process and asserts the replayed run is bit-identical. `import` parses
//! an Accel-Sim-subset text trace (strict by default, `--lossy` to
//! substitute NOPs for out-of-subset opcodes and report them). `validate`
//! replays each `.swt` file and diffs its digest against the sibling
//! `.expect` file — the frozen-corpus CI check; `--write-expect`
//! (re)generates the expectations instead.

use std::process::exit;
use subwarp_core::{Simulator, Workload};
use subwarp_trace as t;
use subwarp_workloads::{figure9_workload, microbenchmark, trace_by_name};

fn usage() -> ! {
    eprintln!(
        "usage: trace record <workload> --out FILE\n\
         \x20      trace replay FILE [--verify-against <workload>]\n\
         \x20      trace import FILE [--out FILE] [--lossy]\n\
         \x20      trace validate FILE... [--write-expect]\n\
         workloads: trace:NAME | micro:SIZE[@ITERS] | toy | fuzz:SEED"
    );
    exit(2);
}

fn fail(msg: impl std::fmt::Display) -> ! {
    eprintln!("error: {msg}");
    exit(1);
}

/// Resolves the shared workload-key vocabulary (plus `fuzz:SEED`).
fn build_workload(key: &str) -> Workload {
    if let Some(name) = key.strip_prefix("trace:") {
        match trace_by_name(name) {
            Some(t) => t.build(),
            None => fail(format!("unknown trace `{name}`")),
        }
    } else if let Some(rest) = key.strip_prefix("micro:") {
        let (size, iters) = match rest.split_once('@') {
            Some((s, i)) => (s, i),
            None => (rest, "16"),
        };
        let (Ok(size), Ok(iters)) = (size.parse::<usize>(), iters.parse::<u32>()) else {
            fail(format!("bad micro spec `{rest}`"))
        };
        microbenchmark(size, iters)
    } else if let Some(seed) = key.strip_prefix("fuzz:") {
        match seed.parse::<u64>() {
            Ok(seed) => subwarp_fuzz::random_workload(seed),
            Err(_) => fail(format!("bad fuzz seed `{seed}`")),
        }
    } else if key == "toy" {
        figure9_workload()
    } else {
        fail(format!(
            "unknown workload `{key}` (trace:NAME | micro:SIZE[@ITERS] | toy | fuzz:SEED)"
        ))
    }
}

fn read_file(path: &str) -> Vec<u8> {
    std::fs::read(path).unwrap_or_else(|e| fail(format!("cannot read `{path}`: {e}")))
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some(cmd) = args.first() else { usage() };
    match cmd.as_str() {
        "record" => record(&args[1..]),
        "replay" => replay(&args[1..]),
        "import" => import(&args[1..]),
        "validate" => validate(&args[1..]),
        "--help" | "-h" => usage(),
        other => {
            eprintln!("unknown subcommand `{other}`");
            usage()
        }
    }
}

fn record(args: &[String]) {
    let mut key = None;
    let mut out = None;
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--out" => out = it.next().cloned(),
            other if !other.starts_with('-') && key.is_none() => key = Some(other.to_owned()),
            _ => usage(),
        }
    }
    let (Some(key), Some(out)) = (key, out) else {
        usage()
    };
    let wl = build_workload(&key);
    let bytes = t::encode_workload(&wl);
    if let Err(e) = std::fs::write(&out, &bytes) {
        fail(format!("cannot write `{out}`: {e}"));
    }
    println!(
        "recorded `{}` -> {out}: {} bytes, format v{}, fingerprint {:#018x}",
        wl.name,
        bytes.len(),
        t::FORMAT_VERSION,
        t::trace_fingerprint(&bytes)
    );
}

fn replay(args: &[String]) {
    let mut file = None;
    let mut verify = None;
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--verify-against" => verify = it.next().cloned(),
            other if !other.starts_with('-') && file.is_none() => file = Some(other.to_owned()),
            _ => usage(),
        }
    }
    let Some(file) = file else { usage() };
    let bytes = read_file(&file);
    let wl = match t::decode_workload(&bytes) {
        Ok(wl) => wl,
        Err(e) => fail(e),
    };
    match t::workload_digest(&bytes, &wl) {
        Ok(digest) => print!("{digest}"),
        Err(e) => fail(e),
    }

    if let Some(key) = verify {
        let direct = build_workload(&key);
        if direct != wl {
            fail(format!(
                "replayed workload differs structurally from `{key}`"
            ));
        }
        for (label, sm, si) in t::digest_configs() {
            let sim = Simulator::new(sm, si);
            let a = sim.run_with_memory(&direct);
            let b = sim.run_with_memory(&wl);
            match (a, b) {
                (Ok((sa, ia)), Ok((sb, ib))) => {
                    if sa != sb || ia != ib {
                        fail(format!(
                            "config {label}: replayed run diverges from `{key}`"
                        ));
                    }
                }
                (Err(e), _) | (_, Err(e)) => fail(e),
            }
        }
        println!("verified: replay is bit-identical to `{key}` under every digest config");
    }
}

fn import(args: &[String]) {
    let mut file = None;
    let mut out = None;
    let mut mode = t::ImportMode::Strict;
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--out" => out = it.next().cloned(),
            "--lossy" => mode = t::ImportMode::Lossy,
            other if !other.starts_with('-') && file.is_none() => file = Some(other.to_owned()),
            _ => usage(),
        }
    }
    let Some(file) = file else { usage() };
    let text = String::from_utf8(read_file(&file))
        .unwrap_or_else(|_| fail(format!("`{file}` is not UTF-8 text")));
    let imported = match t::import_text(&text, mode) {
        Ok(i) => i,
        Err(e) => fail(e),
    };
    let r = &imported.report;
    println!(
        "imported kernel `{}`: {} instruction(s), {} warp(s), \
         {} synthesized scoreboard(s), {} address table(s)",
        r.kernel, r.insts, r.warps, r.synthesized_wr_sb, r.address_tables
    );
    for note in &r.notes {
        println!("  note: {note}");
    }
    for (line, what) in &r.skipped {
        println!("  dropped (line {line}): {what}");
    }
    if !r.is_exact() {
        println!(
            "  lossy import: {} construct(s) outside the subset were dropped",
            r.skipped.len()
        );
    }
    if let Some(out) = out {
        let bytes = t::encode_workload(&imported.workload);
        if let Err(e) = std::fs::write(&out, &bytes) {
            fail(format!("cannot write `{out}`: {e}"));
        }
        println!(
            "wrote {out}: {} bytes, fingerprint {:#018x}",
            bytes.len(),
            t::trace_fingerprint(&bytes)
        );
    }
}

fn expect_path(file: &str) -> std::path::PathBuf {
    std::path::Path::new(file).with_extension("expect")
}

fn validate(args: &[String]) {
    let mut files = Vec::new();
    let mut write = false;
    for a in args {
        match a.as_str() {
            "--write-expect" => write = true,
            other if !other.starts_with('-') => files.push(other.to_owned()),
            _ => usage(),
        }
    }
    if files.is_empty() {
        usage()
    }
    let mut failures = 0usize;
    for file in &files {
        let bytes = read_file(file);
        let digest = match t::replay_digest(&bytes) {
            Ok(d) => d,
            Err(e) => {
                println!("FAIL {file}: {e}");
                failures += 1;
                continue;
            }
        };
        // Byte-identity: decoding and re-encoding must reproduce the file.
        let decoded = t::decode_workload(&bytes).expect("digest already decoded this");
        if t::encode_workload(&decoded) != bytes {
            println!("FAIL {file}: decode -> re-encode is not byte-identical");
            failures += 1;
            continue;
        }
        let expect = expect_path(file);
        if write {
            if let Err(e) = std::fs::write(&expect, &digest) {
                fail(format!("cannot write `{}`: {e}", expect.display()));
            }
            println!("wrote {}", expect.display());
            continue;
        }
        match std::fs::read_to_string(&expect) {
            Ok(want) if want == digest => println!("ok   {file}"),
            Ok(want) => {
                println!("FAIL {file}: digest drifted from {}", expect.display());
                for (g, w) in digest.lines().zip(want.lines()) {
                    if g != w {
                        println!("  got:  {g}");
                        println!("  want: {w}");
                    }
                }
                failures += 1;
            }
            Err(e) => {
                println!("FAIL {file}: cannot read {}: {e}", expect.display());
                failures += 1;
            }
        }
    }
    if failures > 0 {
        eprintln!("{failures} of {} trace(s) failed validation", files.len());
        exit(1);
    }
}
