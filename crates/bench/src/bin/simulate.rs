//! Run a single workload under a configurable SM/SI setup and print its
//! statistics — the day-to-day exploration tool.
//!
//! ```text
//! simulate [options] <workload>
//!
//! workloads:
//!   trace:<NAME>          a suite trace (AV1, BFV1, Coll1, ...)
//!   micro:<SUBWARP_SIZE>  the Figure 11 microbenchmark
//!   toy                   the Figure 9 two-subwarp toy
//!
//! options:
//!   --trace <FILE>            load the workload from a serialized
//!                             subwarp-trace file instead of a built-in
//!   --si <off|sos|both|dws>   interleaving mode          [default: off]
//!   --policy <any|half|all>   stall trigger (N>0/≥0.5/1) [default: half]
//!   --latency <cycles>        L1 miss latency            [default: 600]
//!   --mem <fixed|hier>        memory backend             [default: fixed]
//!   --slots <per-pb>          warp slots per PB          [default: 8]
//!   --sms <n>                 streaming multiprocessors  [default: 1]
//!   --private-mem             per-SM private partitions (no chip sharing)
//!   --subwarps <n>            TST entries per warp       [default: 32]
//!   --order <ft|taken|random|hinted>  divergence order   [default: ft]
//!   --small-icache            4x smaller L0/L1I
//!   --compare                 also run the baseline and report speedup
//!   --events                  dump the subwarp-scheduler event trace
//! ```

use subwarp_core::{
    DivergeOrder, EventKind, HierarchyConfig, MemBackendConfig, SelectPolicy, SiConfig, Simulator,
    SmConfig, Workload,
};
use subwarp_workloads::{figure9_workload, microbenchmark, trace_by_name};

fn usage() -> ! {
    eprintln!(
        "usage: simulate [--si off|sos|both|dws] [--policy any|half|all] \
         [--latency N] [--mem fixed|hier] [--slots N] [--sms N] [--private-mem] \
         [--subwarps N] [--order ft|taken|random|hinted] [--small-icache] \
         [--compare] [--events] <trace:NAME|micro:SIZE|toy|--trace FILE>"
    );
    std::process::exit(2);
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut sm = SmConfig::turing_like();
    let mut si = SiConfig::disabled();
    let mut policy = SelectPolicy::HalfStalled;
    let mut si_kind = "off".to_owned();
    let mut max_subwarps = 32usize;
    let mut compare = false;
    let mut events = false;
    let mut target: Option<String> = None;
    let mut trace_file: Option<String> = None;

    let mut it = args.iter();
    while let Some(a) = it.next() {
        let mut next = |flag: &str| -> String {
            it.next().cloned().unwrap_or_else(|| {
                eprintln!("{flag} needs a value");
                usage()
            })
        };
        match a.as_str() {
            "--si" => si_kind = next("--si"),
            "--policy" => {
                policy = match next("--policy").as_str() {
                    "any" => SelectPolicy::AnyStalled,
                    "half" => SelectPolicy::HalfStalled,
                    "all" => SelectPolicy::AllStalled,
                    _ => usage(),
                }
            }
            "--latency" => sm.miss_latency = next("--latency").parse().unwrap_or_else(|_| usage()),
            "--mem" => {
                sm.mem_backend = match next("--mem").as_str() {
                    "fixed" => MemBackendConfig::Fixed,
                    "hier" => MemBackendConfig::Hierarchical(HierarchyConfig::turing_like()),
                    _ => usage(),
                }
            }
            "--slots" => sm.warp_slots_per_pb = next("--slots").parse().unwrap_or_else(|_| usage()),
            "--sms" => sm.n_sms = next("--sms").parse().unwrap_or_else(|_| usage()),
            "--private-mem" => sm.shared_partitions = false,
            "--subwarps" => max_subwarps = next("--subwarps").parse().unwrap_or_else(|_| usage()),
            "--order" => {
                sm.diverge_order = match next("--order").as_str() {
                    "ft" => DivergeOrder::FallthroughFirst,
                    "taken" => DivergeOrder::TakenFirst,
                    "random" => DivergeOrder::Random,
                    "hinted" => DivergeOrder::Hinted,
                    _ => usage(),
                }
            }
            "--small-icache" => sm = sm.with_small_icaches(),
            "--trace" => trace_file = Some(next("--trace")),
            "--compare" => compare = true,
            "--events" => events = true,
            "--help" | "-h" => usage(),
            other if !other.starts_with('-') => target = Some(other.to_owned()),
            _ => usage(),
        }
    }
    match si_kind.as_str() {
        "off" => {}
        "sos" => si = SiConfig::sos(policy),
        "both" => si = SiConfig::both(policy),
        "dws" => {
            si = SiConfig::dws_like();
            si.policy = policy;
        }
        _ => usage(),
    }
    si = si.with_max_subwarps(max_subwarps);

    let wl: Workload = if let Some(path) = trace_file {
        if target.is_some() {
            eprintln!("--trace replaces the workload argument; give one or the other");
            std::process::exit(2);
        }
        let bytes = std::fs::read(&path).unwrap_or_else(|e| {
            eprintln!("cannot read trace file `{path}`: {e}");
            std::process::exit(2);
        });
        match subwarp_trace::decode_workload(&bytes) {
            Ok(wl) => {
                eprintln!(
                    "# trace file {path}: fingerprint {:#018x}",
                    subwarp_trace::trace_fingerprint(&bytes)
                );
                wl
            }
            Err(e) => {
                eprintln!("cannot load trace `{path}`: {e}");
                std::process::exit(2);
            }
        }
    } else {
        let Some(target) = target else { usage() };
        if let Some(name) = target.strip_prefix("trace:") {
            match trace_by_name(name) {
                Some(t) => {
                    eprintln!("# {}: {}", t.name, t.description);
                    t.build()
                }
                None => {
                    eprintln!("unknown trace `{name}`");
                    std::process::exit(2);
                }
            }
        } else if let Some(size) = target.strip_prefix("micro:") {
            microbenchmark(size.parse().unwrap_or_else(|_| usage()), 16)
        } else if target == "toy" {
            figure9_workload()
        } else {
            usage()
        }
    };

    eprintln!(
        "# workload `{}`: {} instructions, {} warps | SI={} latency={} slots={}x{}",
        wl.name,
        wl.program.len(),
        wl.n_warps,
        si.label(),
        sm.miss_latency,
        sm.n_pbs,
        sm.warp_slots_per_pb
    );

    let sim = Simulator::new(sm.clone(), si);
    let fail = |e: subwarp_core::SimError| -> ! {
        eprintln!("simulation failed: {e}");
        std::process::exit(1);
    };
    let (stats, recorder) = if events {
        let (s, r) = sim.run_recorded(&wl).unwrap_or_else(|e| fail(e));
        (s, Some(r))
    } else {
        (sim.run(&wl).unwrap_or_else(|e| fail(e)), None)
    };

    println!("cycles                    {:>12}", stats.cycles);
    println!(
        "instructions              {:>12}  (ipc {:.2})",
        stats.instructions,
        stats.ipc()
    );
    println!(
        "exposed load-to-use       {:>12}  ({:.1}% of time; divergent {:.1}%)",
        stats.exposed_load_stalls,
        stats.exposed_ratio() * 100.0,
        stats.exposed_divergent_ratio() * 100.0
    );
    println!(
        "exposed traversal stalls  {:>12}",
        stats.exposed_traversal_stalls
    );
    println!(
        "exposed fetch stalls      {:>12}",
        stats.exposed_fetch_stalls
    );
    println!(
        "divergences/reconverges   {:>12}  / {}",
        stats.divergences, stats.reconvergences
    );
    println!(
        "subwarp stall/switch/yield{:>12}  / {} / {}",
        stats.subwarp_stalls, stats.subwarp_switches, stats.subwarp_yields
    );
    println!(
        "L0I/L1I/L1D miss ratios   {:>11.1}% / {:.1}% / {:.1}%",
        stats.l0i.miss_ratio() * 100.0,
        stats.l1i.miss_ratio() * 100.0,
        stats.l1d.miss_ratio() * 100.0
    );
    println!("RT traversals             {:>12}", stats.rt_traversals);
    if !stats.mem.channel_busy_cycles.is_empty() {
        let mem = &stats.mem;
        println!(
            "L2 hit rate               {:>11.1}%  ({} hits / {} accesses)",
            (1.0 - mem.l2.miss_ratio()) * 100.0,
            mem.l2.hits,
            mem.l2.accesses()
        );
        println!(
            "mem fills / MSHR merges   {:>12}  / {}  (mean fill {:.0} cycles, high-water {})",
            mem.fills,
            mem.mshr_merges,
            mem.mean_fill_latency(),
            mem.mshr_high_water
        );
        let util: Vec<String> = mem
            .channel_utilization(stats.sm_cycles_total.max(1))
            .iter()
            .map(|u| format!("{:.0}%", u * 100.0))
            .collect();
        println!(
            "DRAM row hits / misses    {:>12}  / {}  chan util [{}]",
            mem.row_hits,
            mem.row_misses,
            util.join(" ")
        );
    }

    if !stats.per_sm.is_empty() {
        println!("\nper-SM breakdown:");
        for (i, s) in stats.per_sm.iter().enumerate() {
            println!(
                "  SM {i:>2}  cycles {:>10}  instructions {:>10}  ipc {:>5.2}  mem reqs {:>8}",
                s.cycles,
                s.instructions,
                s.ipc(),
                s.mem.requests
            );
        }
    }

    if compare {
        let base = Simulator::new(sm, SiConfig::disabled())
            .run(&wl)
            .unwrap_or_else(|e| fail(e));
        println!(
            "\nbaseline: {} cycles -> speedup {:+.1}%",
            base.cycles,
            (stats.speedup_vs(&base) - 1.0) * 100.0
        );
    }
    if let Some(rec) = recorder {
        println!("\nevents ({}):", rec.events().len());
        for e in rec.events().iter().take(200) {
            let k = match e.kind {
                EventKind::Diverge => "diverge",
                EventKind::Stall => "stall",
                EventKind::Wakeup => "wakeup",
                EventKind::Select => "select",
                EventKind::Yield => "yield",
                EventKind::Block => "block",
                EventKind::Reconverge => "reconverge",
                EventKind::Exit => "exit",
            };
            println!(
                "  {:>8}  warp {:>2}  {:<10} mask {:#010x} pc {}",
                e.cycle, e.warp, k, e.mask, e.pc
            );
        }
        if rec.events().len() > 200 {
            println!("  ... ({} more)", rec.events().len() - 200);
        }
    }
}
