//! Simulator performance smoke: runs the fixed reference sweep (the
//! Figure 12a grid — ten suite traces × seven simulator configurations)
//! and reports wall time plus simulated cycles/second, so perf regressions
//! in the hot loop show up as numbers rather than anecdotes.
//!
//! ```text
//! perf [--jobs N] [--out PATH]
//! ```
//!
//! Writes a small JSON report (default `BENCH_sim.json` in the current
//! directory, i.e. the repo root under `cargo run`). The JSON is
//! hand-rolled: the workspace is offline and keeps zero external
//! dependencies.

use std::time::Instant;
use subwarp_bench::fig12a_sweep;
use subwarp_workloads::built_suite;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut out = String::from("BENCH_sim.json");
    let mut jobs = subwarp_pool::default_jobs();
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--out" => out = it.next().cloned().unwrap_or(out),
            "--jobs" => {
                jobs = it
                    .next()
                    .and_then(|v| v.parse().ok())
                    .filter(|&n| n >= 1)
                    .unwrap_or(jobs)
            }
            other => {
                eprintln!("usage: perf [--jobs N] [--out PATH] (unknown arg {other:?})");
                std::process::exit(2);
            }
        }
    }

    // Workload construction (BVH build + ray tracing), timed separately so
    // the sweep numbers measure the simulator alone.
    let t0 = Instant::now();
    let n_workloads = built_suite().len();
    let build_s = t0.elapsed().as_secs_f64();

    let sweep = fig12a_sweep();
    let n_runs = sweep.len();
    let t1 = Instant::now();
    let grid = sweep.run_with_jobs(jobs).expect("reference sweep failed");
    let wall_s = t1.elapsed().as_secs_f64();

    let mut sim_cycles: u64 = 0;
    let mut instructions: u64 = 0;
    for row in &grid {
        for s in row {
            sim_cycles += s.cycles;
            instructions += s.instructions;
        }
    }
    let cycles_per_second = sim_cycles as f64 / wall_s;
    let runs_per_second = n_runs as f64 / wall_s;

    // `baseline` pins the pre-overhaul numbers (serial HashMap-backed
    // simulator, per-figure workload rebuilds) measured on the single-core
    // reference container, so the report always shows the trajectory.
    let json = format!(
        "{{\n  \"bench\": \"fig12a-reference-sweep\",\n  \"jobs\": {jobs},\n  \
         \"workloads\": {n_workloads},\n  \"sim_runs\": {n_runs},\n  \
         \"workload_build_s\": {build_s:.3},\n  \"sweep_wall_s\": {wall_s:.3},\n  \
         \"sim_cycles\": {sim_cycles},\n  \"instructions\": {instructions},\n  \
         \"cycles_per_second\": {cycles_per_second:.0},\n  \
         \"runs_per_second\": {runs_per_second:.2},\n  \
         \"baseline\": {{\n    \"label\": \"pre-overhaul main (serial, per-figure rebuilds)\",\n    \
         \"fig12a_wall_s\": 5.628,\n    \"figures_all_wall_s\": 54.132\n  }}\n}}\n"
    );
    std::fs::write(&out, &json).expect("write report");
    println!(
        "reference sweep: {n_runs} runs, {sim_cycles} simulated cycles in {wall_s:.3}s \
         ({cycles_per_second:.0} cycles/s, {runs_per_second:.1} runs/s, {jobs} jobs)"
    );
    println!("workload build: {n_workloads} traces in {build_s:.3}s");
    println!("report: {out}");
}
