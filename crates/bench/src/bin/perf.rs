//! Simulator performance smoke: runs the fixed reference sweep (the
//! Figure 12a grid — ten suite traces × seven simulator configurations)
//! and reports wall time plus simulated cycles/second, so perf regressions
//! in the hot loop show up as numbers rather than anecdotes.
//!
//! ```text
//! perf [--jobs N] [--out PATH] [--gate PCT]
//! ```
//!
//! Writes a small JSON report (default `BENCH_sim.json` in the current
//! directory, i.e. the repo root under `cargo run`). The JSON is
//! hand-rolled: the workspace is offline and keeps zero external
//! dependencies.
//!
//! Two extras beyond the headline number:
//!
//! - **Per-phase breakdown** — a second, instrumented pass with
//!   [`SmConfig::profile_phases`] reports where simulator wall time goes
//!   (issue / execute / memory / fast-forward / other). The headline pass
//!   stays uninstrumented so the number CI gates on is the real one.
//! - **History** — `history_cycles_per_second` carries the reports'
//!   headline values forward (newest last, capped at 12, the fresh sample
//!   included), so each regeneration extends the perf trajectory instead
//!   of overwriting it.
//!
//! `--gate PCT` exits non-zero when the fresh `cycles_per_second` is more
//! than `PCT`% below the **median** of the recorded history — the CI
//! perf-regression gate. Gating on the median rather than the single
//! previous sample means one noisy CI machine can neither fail the gate
//! spuriously nor silently ratchet the reference down for later runs.

use std::time::Instant;
use subwarp_bench::{fig12a_sweep, Sweep};
use subwarp_core::{N_PHASES, PHASE_NAMES};
use subwarp_workloads::built_suite;

/// Extracts the number following `"key":` from hand-rolled JSON (no nested
/// objects share key names in our report, so plain string search is enough).
fn json_number(src: &str, key: &str) -> Option<f64> {
    let pat = format!("\"{key}\":");
    let at = src.find(&pat)? + pat.len();
    let rest = src[at..].trim_start();
    let end = rest
        .find(|c: char| !(c.is_ascii_digit() || c == '.' || c == '-' || c == 'e'))
        .unwrap_or(rest.len());
    rest[..end].parse().ok()
}

/// Extracts the numeric array following `"key":` from hand-rolled JSON.
fn json_number_array(src: &str, key: &str) -> Vec<f64> {
    let pat = format!("\"{key}\":");
    let Some(at) = src.find(&pat) else {
        return Vec::new();
    };
    let rest = &src[at + pat.len()..];
    let Some(open) = rest.find('[') else {
        return Vec::new();
    };
    let Some(close) = rest[open..].find(']') else {
        return Vec::new();
    };
    rest[open + 1..open + close]
        .split(',')
        .filter_map(|s| s.trim().parse().ok())
        .collect()
}

/// Median of a sample set; `None` when empty.
fn median(xs: &[f64]) -> Option<f64> {
    if xs.is_empty() {
        return None;
    }
    let mut v = xs.to_vec();
    v.sort_by(|a, b| a.total_cmp(b));
    let mid = v.len() / 2;
    Some(if v.len().is_multiple_of(2) {
        (v[mid - 1] + v[mid]) / 2.0
    } else {
        v[mid]
    })
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut out = String::from("BENCH_sim.json");
    let mut jobs = subwarp_pool::default_jobs();
    let mut gate_pct: Option<f64> = None;
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--out" => out = it.next().cloned().unwrap_or(out),
            "--jobs" => {
                jobs = it
                    .next()
                    .and_then(|v| v.parse().ok())
                    .filter(|&n| n >= 1)
                    .unwrap_or(jobs)
            }
            "--gate" => {
                gate_pct = it.next().and_then(|v| v.parse().ok());
                if gate_pct.is_none() {
                    eprintln!("--gate needs a percentage, e.g. --gate 15");
                    std::process::exit(2);
                }
            }
            other => {
                eprintln!(
                    "usage: perf [--jobs N] [--out PATH] [--gate PCT] (unknown arg {other:?})"
                );
                std::process::exit(2);
            }
        }
    }

    // The previous report (if any) supplies the regression-gate reference
    // and the history the new report extends.
    let previous = std::fs::read_to_string(&out).ok();
    let prev_cps = previous
        .as_deref()
        .and_then(|s| json_number(s, "cycles_per_second"));
    let mut history: Vec<f64> = previous
        .as_deref()
        .map(|s| json_number_array(s, "history_cycles_per_second"))
        .unwrap_or_default();
    // Reports record their own headline into the history they write; only a
    // legacy report (whose history lacks its headline) needs it appended
    // here. The equality check keeps regeneration from duplicating it.
    if let Some(p) = prev_cps {
        if history.last().copied() != Some(p) {
            history.push(p);
        }
    }
    // The gate reference is fixed before this run's sample joins the
    // history: the median of the recorded trajectory.
    let gate_median = median(&history);

    // Workload construction (BVH build + ray tracing), timed separately so
    // the sweep numbers measure the simulator alone.
    let t0 = Instant::now();
    let n_workloads = built_suite().len();
    let build_s = t0.elapsed().as_secs_f64();

    let sweep = fig12a_sweep();
    let n_runs = sweep.len();
    let t1 = Instant::now();
    let grid = sweep.run_with_jobs(jobs).expect("reference sweep failed");
    let wall_s = t1.elapsed().as_secs_f64();

    let mut sim_cycles: u64 = 0;
    let mut instructions: u64 = 0;
    for row in &grid {
        for s in row {
            sim_cycles += s.cycles;
            instructions += s.instructions;
        }
    }
    let cycles_per_second = sim_cycles as f64 / wall_s;
    let runs_per_second = n_runs as f64 / wall_s;

    // Instrumented second pass: same grid with per-phase wall-time clocks
    // enabled. Run separately so the clock reads never tax the headline.
    let mut instrumented = Sweep::new();
    for (name, wl) in sweep.workload_rows() {
        instrumented = instrumented.workload(name.clone(), std::sync::Arc::clone(wl));
    }
    for (label, sm, si) in sweep.config_cols() {
        instrumented =
            instrumented.config(label.clone(), sm.clone().with_profile_phases(true), *si);
    }
    let phased = instrumented
        .run_with_jobs(jobs)
        .expect("instrumented sweep failed");
    let mut phase_nanos = [0u64; N_PHASES];
    for row in &phased {
        for s in row {
            for (acc, n) in phase_nanos.iter_mut().zip(s.phase_nanos.iter()) {
                *acc += n;
            }
        }
    }
    let phase_total: u64 = phase_nanos.iter().sum();

    // Record the fresh sample as the newest history entry, so the next
    // run's gate median already includes it.
    history.push(cycles_per_second);
    const HISTORY_CAP: usize = 12;
    if history.len() > HISTORY_CAP {
        history.drain(..history.len() - HISTORY_CAP);
    }

    let history_json = history
        .iter()
        .map(|v| format!("{v:.0}"))
        .collect::<Vec<_>>()
        .join(", ");
    let phases_json = PHASE_NAMES
        .iter()
        .zip(phase_nanos.iter())
        .map(|(name, n)| {
            let share = if phase_total == 0 {
                0.0
            } else {
                *n as f64 / phase_total as f64
            };
            format!("    \"{name}\": {{ \"nanos\": {n}, \"share\": {share:.3} }}")
        })
        .collect::<Vec<_>>()
        .join(",\n");

    // `baseline` pins the pre-overhaul numbers (serial HashMap-backed
    // simulator, per-figure workload rebuilds) measured on the single-core
    // reference container, so the report always shows the trajectory.
    let json = format!(
        "{{\n  \"bench\": \"fig12a-reference-sweep\",\n  \"jobs\": {jobs},\n  \
         \"workloads\": {n_workloads},\n  \"sim_runs\": {n_runs},\n  \
         \"workload_build_s\": {build_s:.3},\n  \"sweep_wall_s\": {wall_s:.3},\n  \
         \"sim_cycles\": {sim_cycles},\n  \"instructions\": {instructions},\n  \
         \"cycles_per_second\": {cycles_per_second:.0},\n  \
         \"runs_per_second\": {runs_per_second:.2},\n  \
         \"history_cycles_per_second\": [{history_json}],\n  \
         \"phase_wall_time\": {{\n{phases_json}\n  }},\n  \
         \"baseline\": {{\n    \"label\": \"pre-overhaul main (serial, per-figure rebuilds)\",\n    \
         \"fig12a_wall_s\": 5.628,\n    \"figures_all_wall_s\": 54.132\n  }}\n}}\n"
    );
    std::fs::write(&out, &json).expect("write report");
    println!(
        "reference sweep: {n_runs} runs, {sim_cycles} simulated cycles in {wall_s:.3}s \
         ({cycles_per_second:.0} cycles/s, {runs_per_second:.1} runs/s, {jobs} jobs)"
    );
    println!("workload build: {n_workloads} traces in {build_s:.3}s");
    for (name, n) in PHASE_NAMES.iter().zip(phase_nanos.iter()) {
        let share = if phase_total == 0 {
            0.0
        } else {
            100.0 * *n as f64 / phase_total as f64
        };
        println!(
            "phase {name:<13} {:>9.3} ms ({share:>5.1}%)",
            *n as f64 / 1e6
        );
    }
    println!("report: {out}");

    // CI perf-regression gate: fail when the fresh headline regresses more
    // than the allowed percentage versus the median of the checked-in
    // history — robust to any single noisy sample in the trajectory.
    if let Some(pct) = gate_pct {
        match gate_median {
            Some(reference) if reference > 0.0 => {
                let floor = reference * (1.0 - pct / 100.0);
                if cycles_per_second < floor {
                    eprintln!(
                        "PERF GATE FAILED: {cycles_per_second:.0} cycles/s is more than \
                         {pct}% below the history median {reference:.0} (floor {floor:.0})"
                    );
                    std::process::exit(1);
                }
                println!(
                    "perf gate ok: {cycles_per_second:.0} >= {floor:.0} \
                     ({pct}% tolerance vs history median {reference:.0})"
                );
            }
            _ => println!("perf gate skipped: no perf history at {out}"),
        }
    }
}
