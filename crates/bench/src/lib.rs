#![warn(missing_docs)]

//! # subwarp-bench — experiment library regenerating every paper result
//!
//! One function per table/figure of *GPU Subwarp Interleaving* (HPCA 2022):
//!
//! | function | paper result |
//! |---|---|
//! | [`fig3`] | Figure 3 — exposed load-to-use stalls, total vs divergent |
//! | [`table3`] | Table III — microbenchmark speedup vs divergence factor |
//! | [`fig10`] | Figure 10 — TST state walkthroughs (without/with yield) |
//! | [`fig12a`] | Figure 12a — per-trace speedups, 6 SI configs + BestOf |
//! | [`fig12b`] | Figure 12b — reduction in exposed stalls |
//! | [`fig13`] | Figure 13 — mean speedup vs L1 miss latency |
//! | [`fig14`] | Figure 14 — sensitivity to warp slots |
//! | [`fig15`] | Figure 15 — sensitivity to subwarps per warp |
//! | [`icache`] | §V-C-4 — 4× smaller instruction caches |
//! | [`ablation_diverge_order`] | §VI limiter #3 — divergent-path order |
//! | [`mem_sweep`] | beyond the paper — SI speedup vs measured miss latency and DRAM bandwidth on the hierarchical memory backend |
//!
//! The `figures` binary formats these as tables and ASCII charts; the
//! criterion benches under `benches/` time representative slices.
//!
//! The sweep engine itself — [`Sweep`], [`run_resilient`], [`Journal`],
//! fingerprints — lives in the `subwarp-sweep` crate (shared with the
//! `subwarp-serve` daemon) and is re-exported here so existing callers
//! keep compiling unchanged.

pub mod experiments;

/// Compatibility shim: the fault-tolerant sweep layer moved to the
/// `subwarp-sweep` crate; `subwarp_bench::resilient::*` paths keep working.
pub mod resilient {
    pub use subwarp_sweep::{
        cell_fingerprint, chaos_sweep, global_policy, holes_observed, install_global_policy,
        job_error_to_sim, lock_path_for, run_resilient, workload_hash, Journal, PartialGrid,
        SweepPolicy,
    };
}

pub use experiments::*;
pub use subwarp_sweep::{
    cell_fingerprint, chaos_sweep, global_policy, holes_observed, install_global_policy,
    job_error_to_sim, run_resilient, workload_hash, Journal, PartialGrid, Sweep, SweepPolicy,
};
