//! Fault-tolerant sweep execution: supervised cells, labeled holes, and a
//! checkpoint journal for `--resume`.
//!
//! [`Sweep::run`](crate::Sweep::run) dies with its first failing cell; this
//! module adds [`run_resilient`], which runs the same grid under
//! [`subwarp_pool::run_supervised`] — each cell isolated by `catch_unwind`,
//! optionally bounded by a soft wall-clock deadline and retried on
//! transient failures — and returns a [`PartialGrid`]: every cell is either
//! its `RunStats` or a labeled [`JobError`] *hole*, never a lost sweep.
//!
//! ## The checkpoint journal
//!
//! A [`Journal`] is an append-only JSONL file mapping a **cell
//! fingerprint** — an FNV-1a hash over the workload's `Debug` form, the
//! configuration's `Debug` forms, and the cell label — to the cell's
//! [`RunStats`]. Completed cells are appended (and flushed) as they finish,
//! so a SIGKILLed sweep loses at most the in-flight cells. On resume,
//! journaled cells are restored without re-simulating; because `RunStats`
//! is all-integer, the restored values are *exactly* the originals and a
//! resumed sweep's output is byte-identical to an uninterrupted one.
//! Malformed or truncated lines (the tail of a killed run) are skipped on
//! load. The journal keys on content fingerprints, not grid positions, so
//! a stale journal from a different sweep is simply never consulted.
//!
//! ## Fault injection
//!
//! A [`SweepPolicy`] can carry a [`FaultPlan`] (see `subwarp_core::fault`),
//! which deterministically sabotages cells by label before they run —
//! the chaos path exercised by `figures chaos` and the CI `chaos-smoke`
//! job.

use std::collections::HashMap;
use std::io::{BufRead, Write};
use std::path::{Path, PathBuf};
use std::sync::{Arc, Mutex, OnceLock};
use std::time::Duration;

use subwarp_core::{FaultPlan, RunStats, SiConfig, SimError, SmConfig, Workload};
use subwarp_pool::{JobCause, JobError, Supervisor};

use crate::experiments::Sweep;

// ------------------------------------------------------------ fingerprints

fn fnv1a(seed: u64, bytes: &[u8]) -> u64 {
    let mut h = if seed == 0 {
        0xcbf2_9ce4_8422_2325
    } else {
        seed
    };
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Content fingerprint of one sweep cell: the workload and both configs in
/// their `Debug` forms, chained through FNV-1a with the cell label. Any
/// change to the workload, the configuration, or the naming produces a new
/// fingerprint, so journals can never resurrect stale results.
pub fn cell_fingerprint(label: &str, workload_hash: u64, sm: &SmConfig, si: &SiConfig) -> u64 {
    let mut h = fnv1a(workload_hash, label.as_bytes());
    h = fnv1a(h, format!("{sm:?}").as_bytes());
    h = fnv1a(h, format!("{si:?}").as_bytes());
    h
}

/// FNV-1a hash of a workload's `Debug` form — precomputed once per sweep
/// row so per-cell fingerprinting does not re-render large workloads.
pub fn workload_hash(wl: &Workload) -> u64 {
    fnv1a(0, format!("{wl:?}").as_bytes())
}

// ----------------------------------------------------------- stats codec

/// Flattens `RunStats` into its 44 fixed-order integer fields, plus the
/// variable-length per-channel busy-cycle vector. `RunStats` is all-integer
/// by construction, so this codec is exact: `units_to_stats(stats_to_units)`
/// is the identity, which is what makes resumed sweeps byte-identical.
fn stats_to_units(s: &RunStats) -> (Vec<u64>, Vec<u64>) {
    let mut u = Vec::with_capacity(44);
    u.push(s.cycles);
    u.push(s.sm_cycles_total);
    u.push(s.instructions);
    u.extend_from_slice(&s.issued_by_unit);
    u.push(s.exposed_load_stalls);
    u.push(s.exposed_load_stalls_divergent);
    u.push(s.exposed_traversal_stalls);
    u.push(s.exposed_fetch_stalls);
    u.push(s.idle_cycles);
    u.extend_from_slice(&s.cycle_causes);
    u.push(s.subwarp_stalls);
    u.push(s.subwarp_switches);
    u.push(s.subwarp_yields);
    u.push(s.divergences);
    u.push(s.reconvergences);
    u.push(s.l0i.hits);
    u.push(s.l0i.misses);
    u.push(s.l1i.hits);
    u.push(s.l1i.misses);
    u.push(s.l1d.hits);
    u.push(s.l1d.misses);
    u.push(s.rt_traversals);
    u.push(s.peak_resident_warps as u64);
    u.push(s.mem.l2.hits);
    u.push(s.mem.l2.misses);
    u.push(s.mem.mshr_merges);
    u.push(s.mem.mshr_high_water as u64);
    u.push(s.mem.row_hits);
    u.push(s.mem.row_misses);
    u.push(s.mem.fills);
    u.push(s.mem.total_fill_latency);
    u.push(s.mem.requests);
    debug_assert_eq!(u.len(), 44);
    (u, s.mem.channel_busy_cycles.clone())
}

fn units_to_stats(u: &[u64], ch: &[u64]) -> Option<RunStats> {
    if u.len() != 44 {
        return None;
    }
    let mut s = RunStats {
        cycles: u[0],
        sm_cycles_total: u[1],
        instructions: u[2],
        exposed_load_stalls: u[9],
        exposed_load_stalls_divergent: u[10],
        exposed_traversal_stalls: u[11],
        exposed_fetch_stalls: u[12],
        idle_cycles: u[13],
        subwarp_stalls: u[22],
        subwarp_switches: u[23],
        subwarp_yields: u[24],
        divergences: u[25],
        reconvergences: u[26],
        rt_traversals: u[33],
        peak_resident_warps: u[34] as usize,
        ..RunStats::default()
    };
    s.issued_by_unit.copy_from_slice(&u[3..9]);
    s.cycle_causes.copy_from_slice(&u[14..22]);
    s.l0i.hits = u[27];
    s.l0i.misses = u[28];
    s.l1i.hits = u[29];
    s.l1i.misses = u[30];
    s.l1d.hits = u[31];
    s.l1d.misses = u[32];
    s.mem.l2.hits = u[35];
    s.mem.l2.misses = u[36];
    s.mem.mshr_merges = u[37];
    s.mem.mshr_high_water = u[38] as usize;
    s.mem.row_hits = u[39];
    s.mem.row_misses = u[40];
    s.mem.fills = u[41];
    s.mem.total_fill_latency = u[42];
    s.mem.requests = u[43];
    s.mem.channel_busy_cycles = ch.to_vec();
    Some(s)
}

/// Escapes a string for embedding in a JSON string literal.
fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Extracts the value of a `"key":[...]` integer array from one journal
/// line. Minimal by design: journal lines are machine-written by this
/// module, so anything that does not parse is treated as a truncated tail
/// and skipped by the loader.
fn parse_u64_array(line: &str, key: &str) -> Option<Vec<u64>> {
    let pat = format!("\"{key}\":[");
    let start = line.find(&pat)? + pat.len();
    let end = start + line[start..].find(']')?;
    let body = &line[start..end];
    if body.trim().is_empty() {
        return Some(Vec::new());
    }
    body.split(',').map(|t| t.trim().parse().ok()).collect()
}

fn parse_hex_field(line: &str, key: &str) -> Option<u64> {
    let pat = format!("\"{key}\":\"");
    let start = line.find(&pat)? + pat.len();
    let end = start + line[start..].find('"')?;
    u64::from_str_radix(&line[start..end], 16).ok()
}

// ---------------------------------------------------------------- journal

/// An append-only JSONL checkpoint journal of completed sweep cells.
///
/// One line per completed cell:
///
/// ```json
/// {"v":1,"fp":"0123456789abcdef","label":"AV1/Both,N>=0.5","u":[..44 ints..],"ch":[..]}
/// ```
///
/// `fp` is the [`cell_fingerprint`] in hex, `u` the 44 fixed-order integer
/// fields of `RunStats`, `ch` the per-channel DRAM busy-cycle vector.
/// Opening a journal loads every well-formed line (last write wins) and
/// positions the file for appending; each [`record`](Journal::record) is
/// flushed immediately so a killed sweep loses only in-flight cells.
#[derive(Debug)]
pub struct Journal {
    path: PathBuf,
    restored: usize,
    completed: Mutex<HashMap<u64, RunStats>>,
    file: Mutex<std::fs::File>,
}

impl Journal {
    /// Opens (creating if absent) the journal at `path`, loading previously
    /// completed cells. Malformed lines — e.g. the torn tail of a killed
    /// run — are skipped.
    pub fn open(path: impl AsRef<Path>) -> std::io::Result<Journal> {
        let path = path.as_ref().to_path_buf();
        if let Some(dir) = path.parent() {
            if !dir.as_os_str().is_empty() {
                std::fs::create_dir_all(dir)?;
            }
        }
        let mut completed = HashMap::new();
        match std::fs::File::open(&path) {
            Ok(f) => {
                for line in std::io::BufReader::new(f).lines() {
                    let line = line?;
                    let parsed = (|| {
                        let fp = parse_hex_field(&line, "fp")?;
                        let u = parse_u64_array(&line, "u")?;
                        let ch = parse_u64_array(&line, "ch")?;
                        Some((fp, units_to_stats(&u, &ch)?))
                    })();
                    if let Some((fp, stats)) = parsed {
                        completed.insert(fp, stats);
                    }
                }
            }
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => {}
            Err(e) => return Err(e),
        }
        let file = std::fs::OpenOptions::new()
            .create(true)
            .append(true)
            .open(&path)?;
        Ok(Journal {
            path,
            restored: completed.len(),
            completed: Mutex::new(completed),
            file: Mutex::new(file),
        })
    }

    /// The journal's file path.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Cells restored from disk when the journal was opened.
    pub fn restored(&self) -> usize {
        self.restored
    }

    /// The journaled result for a fingerprint, if that cell completed in an
    /// earlier (or concurrent) run.
    pub fn lookup(&self, fp: u64) -> Option<RunStats> {
        self.completed
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .get(&fp)
            .cloned()
    }

    /// Records a completed cell: appends one line and flushes so the result
    /// survives a SIGKILL arriving right after.
    pub fn record(&self, fp: u64, label: &str, stats: &RunStats) {
        let (u, ch) = stats_to_units(stats);
        let fmt_ints = |v: &[u64]| {
            v.iter()
                .map(|x| x.to_string())
                .collect::<Vec<_>>()
                .join(",")
        };
        let line = format!(
            "{{\"v\":1,\"fp\":\"{fp:016x}\",\"label\":\"{}\",\"u\":[{}],\"ch\":[{}]}}\n",
            json_escape(label),
            fmt_ints(&u),
            fmt_ints(&ch)
        );
        {
            let mut f = self.file.lock().unwrap_or_else(|e| e.into_inner());
            // A failed append degrades resume granularity, never the sweep.
            let _ = f.write_all(line.as_bytes());
            let _ = f.flush();
        }
        self.completed
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .insert(fp, stats.clone());
    }
}

// ----------------------------------------------------------------- policy

/// How a resilient sweep is supervised.
#[derive(Debug, Clone, Default)]
pub struct SweepPolicy {
    /// Worker threads; `None` uses [`subwarp_pool::default_jobs`].
    pub workers: Option<usize>,
    /// Per-cell soft wall-clock deadline; an overdue cell becomes a
    /// [`SimError::Timeout`] hole.
    pub deadline: Option<Duration>,
    /// Attempts per cell (`0`/`1` = no retries). Retries apply to panics
    /// and simulation errors — transient injected faults (see
    /// `FaultPlan::clears_after`) succeed on a later attempt.
    pub max_attempts: u32,
    /// Deterministic fault injection, evaluated per cell label before the
    /// simulation runs.
    pub faults: Option<FaultPlan>,
    /// Checkpoint journal: completed cells are restored from (and recorded
    /// to) this journal.
    pub journal: Option<Arc<Journal>>,
}

impl SweepPolicy {
    fn supervisor(&self) -> Supervisor {
        Supervisor {
            workers: self.workers.unwrap_or_else(subwarp_pool::default_jobs),
            deadline: self.deadline,
            max_attempts: self.max_attempts.max(1),
            retry_panics: self.max_attempts > 1,
            retry_errors: self.max_attempts > 1,
            ..Supervisor::default()
        }
    }
}

/// Process-global sweep policy, installed once by the `figures` binary when
/// invoked with `--resume`/`--journal`/`--deadline`/`--attempts` so every
/// figure's internal `Sweep::run` becomes resilient without threading the
/// policy through each experiment's signature. Library users (and tests)
/// pass a policy to [`run_resilient`] explicitly instead; nothing in this
/// crate installs a global policy on its own.
static GLOBAL_POLICY: OnceLock<SweepPolicy> = OnceLock::new();

/// Installs the process-global policy. Returns `false` (and changes
/// nothing) if one was already installed.
pub fn install_global_policy(policy: SweepPolicy) -> bool {
    GLOBAL_POLICY.set(policy).is_ok()
}

/// The installed process-global policy, if any.
pub fn global_policy() -> Option<&'static SweepPolicy> {
    GLOBAL_POLICY.get()
}

// ----------------------------------------------------------- partial grid

/// A sweep result where every cell is either its `RunStats` or a labeled
/// hole explaining the failure.
#[derive(Debug)]
pub struct PartialGrid {
    n_configs: usize,
    cells: Vec<Result<RunStats, JobError<SimError>>>,
}

impl PartialGrid {
    /// Grid rows: `rows()[w][c]` is workload `w` under configuration `c`.
    pub fn rows(&self) -> Vec<&[Result<RunStats, JobError<SimError>>]> {
        if self.n_configs == 0 {
            return Vec::new();
        }
        self.cells.chunks(self.n_configs).collect()
    }

    /// One cell.
    pub fn cell(&self, workload: usize, config: usize) -> &Result<RunStats, JobError<SimError>> {
        &self.cells[workload * self.n_configs + config]
    }

    /// Every failed cell, in grid order.
    pub fn holes(&self) -> Vec<&JobError<SimError>> {
        self.cells.iter().filter_map(|c| c.as_ref().err()).collect()
    }

    /// Cells that completed successfully.
    pub fn completed(&self) -> usize {
        self.cells.iter().filter(|c| c.is_ok()).count()
    }

    /// Collapses into the strict all-or-nothing grid `Sweep::run` returns:
    /// the first hole in grid order becomes the sweep's `SimError`.
    pub fn into_result(self) -> Result<Vec<Vec<RunStats>>, SimError> {
        let n_configs = self.n_configs;
        let mut flat = Vec::with_capacity(self.cells.len());
        for cell in self.cells {
            flat.push(cell.map_err(job_error_to_sim)?);
        }
        Ok(if n_configs == 0 {
            Vec::new()
        } else {
            flat.chunks(n_configs).map(<[RunStats]>::to_vec).collect()
        })
    }
}

/// Converts a supervision failure into the `SimError` vocabulary so strict
/// callers keep their `Result<_, SimError>` signature.
pub fn job_error_to_sim(e: JobError<SimError>) -> SimError {
    match e.cause {
        JobCause::Err(sim) => sim,
        JobCause::Panic(message) => SimError::Panicked {
            workload: e.label,
            message,
        },
        JobCause::Timeout { deadline } => SimError::Timeout {
            workload: e.label,
            deadline_ms: deadline.as_millis() as u64,
        },
        JobCause::Cancelled => SimError::Cancelled { workload: e.label },
    }
}

// ------------------------------------------------------------ run_resilient

struct JobSpec {
    label: String,
    fp: u64,
    wl: Arc<Workload>,
    sm: SmConfig,
    si: SiConfig,
}

/// Runs a sweep grid under supervision, returning a [`PartialGrid`] with
/// one labeled outcome per cell.
///
/// Cells whose fingerprint is already in the policy's [`Journal`] are
/// restored without re-simulating; freshly completed cells are journaled
/// as they finish. Cell labels are `"<workload>/<config>"`. Determinism:
/// for a fault-free (or deterministically-faulted) sweep, the `Ok`/`Err`
/// pattern and every `Ok` payload are identical for serial and parallel
/// runs, and for interrupted-then-resumed versus uninterrupted runs.
// `JobError<SimError>` is only materialized once per *failed* cell; boxing
// it would push the indirection into every PartialGrid accessor for no
// hot-path benefit.
#[allow(clippy::result_large_err)]
pub fn run_resilient(sweep: &Sweep, policy: &SweepPolicy) -> PartialGrid {
    let n_configs = sweep.configs.len();
    let specs: Vec<JobSpec> = sweep
        .workloads
        .iter()
        .flat_map(|(wname, wl)| {
            let whash = workload_hash(wl);
            sweep.configs.iter().map(move |(cname, sm, si)| {
                let label = format!("{wname}/{cname}");
                let fp = cell_fingerprint(&label, whash, sm, si);
                JobSpec {
                    label,
                    fp,
                    wl: Arc::clone(wl),
                    sm: sm.clone(),
                    si: *si,
                }
            })
        })
        .collect();

    let mut cells: Vec<Option<Result<RunStats, JobError<SimError>>>> =
        (0..specs.len()).map(|_| None).collect();
    if let Some(journal) = &policy.journal {
        for (i, spec) in specs.iter().enumerate() {
            if let Some(stats) = journal.lookup(spec.fp) {
                cells[i] = Some(Ok(stats));
            }
        }
    }
    let pending: Vec<usize> = (0..specs.len()).filter(|&i| cells[i].is_none()).collect();
    if !pending.is_empty() {
        let labels: Vec<String> = pending.iter().map(|&i| specs[i].label.clone()).collect();
        let specs = Arc::new(specs);
        let run_specs = Arc::clone(&specs);
        let pending_for_job = pending.clone();
        let faults = policy.faults.clone();
        let journal = policy.journal.clone();
        let outcomes =
            subwarp_pool::run_supervised(&policy.supervisor(), &labels, move |k, attempt| {
                let spec = &run_specs[pending_for_job[k]];
                if let Some(plan) = &faults {
                    plan.sabotage(&spec.label, attempt)?;
                }
                let stats = Simulator::new(spec.sm.clone(), spec.si).run(&spec.wl)?;
                if let Some(j) = &journal {
                    j.record(spec.fp, &spec.label, &stats);
                }
                Ok(stats)
            });
        for (k, outcome) in outcomes.into_iter().enumerate() {
            // Re-anchor the supervised batch's job index to the grid index.
            let i = pending[k];
            cells[i] = Some(outcome.map_err(|e| JobError { index: i, ..e }));
        }
    }
    PartialGrid {
        n_configs,
        cells: cells
            .into_iter()
            .map(|c| c.expect("every cell resolved"))
            .collect(),
    }
}

use subwarp_core::Simulator;

impl Sweep {
    /// Runs the grid under a supervision policy, returning a partial grid
    /// with labeled holes instead of dying with the first failure. See
    /// [`run_resilient`].
    pub fn run_resilient(&self, policy: &SweepPolicy) -> PartialGrid {
        run_resilient(self, policy)
    }
}

// ------------------------------------------------------------- chaos sweep

/// A small, fast sweep with deterministic injected faults, used by
/// `figures chaos` and the CI `chaos-smoke` job to prove the supervision
/// layer end to end: a panic hole, an injected-`SimError` hole, a
/// deadline-timeout hole, and a dropped-fill column that must surface as a
/// deadlock hole via the SM watchdog — while every healthy cell completes.
pub fn chaos_sweep() -> (Sweep, SweepPolicy) {
    use subwarp_core::{FaultKind, MemBackendConfig, MemFaultConfig};
    use subwarp_workloads::{figure9_workload, microbenchmark};

    let mut sm = SmConfig::turing_like();
    // Keep the dropped-fill deadlock cheap: a short watchdog horizon is
    // plenty for these tiny kernels.
    sm.max_cycles = 10_000_000;
    let mut faulty_sm = sm.clone();
    faulty_sm.mem_backend = MemBackendConfig::Faulty {
        fault: MemFaultConfig {
            seed: 0xC405,
            drop_per_mille: 1000,
            ..MemFaultConfig::default()
        },
        inner: Box::new(MemBackendConfig::Fixed),
    };

    let sweep = Sweep::new()
        .workload("toy", Arc::new(figure9_workload()))
        .workload("micro", Arc::new(microbenchmark(8, 4)))
        .config("base", sm.clone(), SiConfig::disabled())
        .config("si", sm, SiConfig::best())
        .config("dropped-fills", faulty_sm, SiConfig::disabled());

    let faults = FaultPlan::none(0xC405)
        .with_target("toy/si", FaultKind::Panic)
        .with_target("micro/base", FaultKind::Error)
        .with_target("micro/si", FaultKind::Delay { ms: 60_000 });
    let policy = SweepPolicy {
        deadline: Some(Duration::from_millis(1500)),
        faults: Some(faults),
        ..SweepPolicy::default()
    };
    (sweep, policy)
}
