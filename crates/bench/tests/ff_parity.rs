//! Regression test for fast-forward accounting over the full Figure-12a grid:
//! every suite workload under the baseline plus all six SI settings must
//! produce *identical* `RunStats` — cycles, exposed-stall counters, cache
//! stats, and the per-cause cycle attribution — whether quiescent stretches
//! are stepped serially or fast-forwarded in bulk.

use subwarp_bench::si_configs;
use subwarp_bench::Sweep;
use subwarp_core::{SiConfig, SmConfig};

#[test]
fn fig12a_grid_is_identical_with_and_without_fast_forward() {
    let grid = |ff: bool| {
        let mut sweep = Sweep::over_suite().config(
            "baseline",
            SmConfig::turing_like().with_fast_forward(ff),
            SiConfig::disabled(),
        );
        for (label, si) in si_configs() {
            sweep = sweep.config(label, SmConfig::turing_like().with_fast_forward(ff), si);
        }
        sweep.run().expect("fig12a grid simulates cleanly")
    };
    let fast = grid(true);
    let serial = grid(false);
    assert_eq!(fast.len(), serial.len());
    let labels: Vec<String> = std::iter::once("baseline".to_owned())
        .chain(si_configs().into_iter().map(|(l, _)| l))
        .collect();
    let names: Vec<String> = Sweep::over_suite()
        .workload_names()
        .map(str::to_owned)
        .collect();
    for (w, (frow, srow)) in fast.iter().zip(&serial).enumerate() {
        for (c, (f, s)) in frow.iter().zip(srow).enumerate() {
            assert_eq!(
                f, s,
                "{} / {}: fast-forward changed the simulation result",
                names[w], labels[c]
            );
            assert_eq!(f.causes_total(), f.cycles, "{} / {}", names[w], labels[c]);
        }
    }
}
