//! The tentpole guarantee of the sweep engine: a parallel experiment grid
//! is config-for-config identical to the serial one.
//!
//! The full-suite check simulates the Figure 12a grid twice (70 runs each
//! way), which is cheap in release but minutes in debug — so it is gated
//! to optimized builds (CI's perf-smoke job runs the test suite in
//! release). The toy-scale check in `experiments.rs`'s unit tests covers
//! debug builds.

#![cfg(not(debug_assertions))]

use subwarp_bench::fig12a_sweep;

#[test]
fn fig12a_grid_parallel_matches_serial_config_for_config() {
    let sweep = fig12a_sweep();
    let serial = sweep.run_with_jobs(1).expect("serial sweep");
    let parallel = sweep.run_with_jobs(8).expect("parallel sweep");
    assert_eq!(serial.len(), parallel.len());
    for (w, (s_row, p_row)) in serial.iter().zip(&parallel).enumerate() {
        for (c, (s, p)) in s_row.iter().zip(p_row).enumerate() {
            assert_eq!(s, p, "workload {w} config {c} diverged across schedules");
        }
    }
}
