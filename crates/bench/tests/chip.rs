//! Chip-mode determinism: multi-SM runs against the *shared* L2/DRAM
//! partitions must be exactly reproducible, independent of host-thread
//! parallelism (`SUBWARP_JOBS`), and must aggregate per-SM statistics
//! consistently. Chip stepping is serial within one run — the global event
//! heap fixes the SM interleaving — so none of this may depend on the
//! worker-pool width the surrounding sweep uses.

use subwarp_core::{HierarchyConfig, MemBackendConfig, SiConfig, Simulator, SmConfig};
use subwarp_workloads::{microbenchmark_with, MicroConfig};

fn chip_sm(n_sms: usize) -> SmConfig {
    let mut sm = SmConfig::turing_like().with_mem_backend(MemBackendConfig::Hierarchical(
        HierarchyConfig::turing_like(),
    ));
    sm.n_sms = n_sms;
    sm
}

fn chip_workload() -> subwarp_core::Workload {
    microbenchmark_with(MicroConfig {
        n_warps: 16,
        ..MicroConfig::default()
    })
}

#[test]
fn chip_run_is_deterministic_across_job_counts() {
    let wl = std::sync::Arc::new(chip_workload());
    let reference = Simulator::new(chip_sm(4), SiConfig::best())
        .run_with_memory(&wl)
        .expect("chip run");
    for jobs in [1, 8] {
        let wl = std::sync::Arc::clone(&wl);
        let out = subwarp_pool::run_with_jobs(jobs, 4, |_| {
            Simulator::new(chip_sm(4), SiConfig::best())
                .run_with_memory(&wl)
                .expect("chip run")
        });
        for (stats, image) in out {
            assert_eq!(stats, reference.0, "chip stats diverged at jobs={jobs}");
            assert_eq!(image, reference.1, "chip image diverged at jobs={jobs}");
        }
    }
}

#[test]
fn chip_memory_image_matches_single_sm_oracle() {
    // Architectural state is schedule-invariant: distributing the warps
    // over 4 contending SMs must finalize the exact store image a single
    // SM produces.
    let wl = chip_workload();
    let (_, base) = Simulator::new(chip_sm(1), SiConfig::best())
        .run_with_memory(&wl)
        .expect("single-SM run");
    let (_, chip) = Simulator::new(chip_sm(4), SiConfig::best())
        .run_with_memory(&wl)
        .expect("chip run");
    assert_eq!(base, chip);
}

#[test]
fn chip_aggregates_per_sm_stats_consistently() {
    let wl = chip_workload();
    let stats = Simulator::new(chip_sm(4), SiConfig::best())
        .run(&wl)
        .expect("chip run");
    assert_eq!(stats.per_sm.len(), 4);
    let insts: u64 = stats.per_sm.iter().map(|s| s.instructions).sum();
    let cycles_max = stats.per_sm.iter().map(|s| s.cycles).max().unwrap();
    let cycles_sum: u64 = stats.per_sm.iter().map(|s| s.cycles).sum();
    assert_eq!(insts, stats.instructions);
    assert_eq!(cycles_max, stats.cycles);
    assert_eq!(cycles_sum, stats.sm_cycles_total);
    assert!(stats.per_sm.iter().all(|s| s.instructions > 0));
    // Every SM issued real traffic into the shared partitions, and the
    // chip aggregate accounts each SM's requests exactly once.
    let reqs: u64 = stats.per_sm.iter().map(|s| s.mem.requests).sum();
    assert_eq!(reqs, stats.mem.requests);
    assert!(stats.per_sm.iter().all(|s| s.mem.requests > 0));
}

/// The Sec.-VI acceptance trend. The simulator is deterministic, so the
/// monotonicity assertions are exact, not statistical. Release-only: the
/// 36-SM points are minutes in debug but subsecond optimized.
#[cfg(not(debug_assertions))]
#[test]
fn chip_sweep_gain_erodes_as_shared_partitions_saturate() {
    let rows = subwarp_bench::chip_sweep().expect("chip sweep");
    assert_eq!(rows.first().map(|r| r.n_sms), Some(1));
    assert_eq!(rows.last().map(|r| r.n_sms), Some(36));
    for w in rows.windows(2) {
        assert!(
            // Half-a-point tolerance: the trend is flat before contention
            // bites (tiny chips barely touch the shared channels).
            w[1].gain_pct <= w[0].gain_pct + 0.5,
            "SI gain must erode with chip size: {} SMs {:.1}% -> {} SMs {:.1}%",
            w[0].n_sms,
            w[0].gain_pct,
            w[1].n_sms,
            w[1].gain_pct
        );
        assert!(
            w[1].channel_utilization >= w[0].channel_utilization,
            "shared-channel pressure must grow with chip size"
        );
    }
    let (first, last) = (rows.first().unwrap(), rows.last().unwrap());
    assert!(
        last.gain_pct < 0.7 * first.gain_pct,
        "the 36-SM chip must show substantial erosion: {:.1}% vs {:.1}%",
        last.gain_pct,
        first.gain_pct
    );
}

#[test]
fn private_partitions_opt_out_is_honored() {
    // `with_shared_partitions(false)` restores one private hierarchy per
    // SM (the pre-chip model); the run must still be deterministic and
    // produce the same architectural image.
    let wl = chip_workload();
    let sm = chip_sm(4).with_shared_partitions(false);
    let a = Simulator::new(sm.clone(), SiConfig::best())
        .run_with_memory(&wl)
        .expect("private-partition run");
    let b = Simulator::new(sm, SiConfig::best())
        .run_with_memory(&wl)
        .expect("private-partition run");
    assert_eq!(a, b);
    let (_, base) = Simulator::new(chip_sm(1), SiConfig::best())
        .run_with_memory(&wl)
        .expect("single-SM run");
    assert_eq!(a.1, base);
}
