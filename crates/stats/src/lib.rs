#![warn(missing_docs)]

//! # subwarp-stats — aggregation and report formatting
//!
//! Turns [`subwarp_core::RunStats`] collections into the tables and
//! text-mode figures the `figures` harness prints: aligned tables, ASCII
//! horizontal bar charts (the shape of the paper's Figures 3 and 12), CSV
//! export, and the arithmetic/geometric means the paper reports.
//!
//! ```
//! use subwarp_stats::Table;
//!
//! let mut t = Table::new(vec!["trace".into(), "speedup".into()]);
//! t.row(vec!["BFV1".into(), "19.4%".into()]);
//! assert!(t.to_string().contains("BFV1"));
//! ```

mod chart;
mod table;

pub use chart::BarChart;
pub use table::Table;

/// Arithmetic mean; 0 for an empty slice.
pub fn mean(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        0.0
    } else {
        xs.iter().sum::<f64>() / xs.len() as f64
    }
}

/// Geometric mean; 0 for an empty slice.
///
/// # Panics
/// Panics if any element is non-positive.
pub fn geomean(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        return 0.0;
    }
    assert!(
        xs.iter().all(|&x| x > 0.0),
        "geomean requires positive values"
    );
    (xs.iter().map(|x| x.ln()).sum::<f64>() / xs.len() as f64).exp()
}

/// Formats a ratio as a percentage with one decimal (`0.063` → `"6.3%"`).
pub fn pct(x: f64) -> String {
    format!("{:.1}%", x * 100.0)
}

/// Formats a speedup ratio as a percent gain (`1.063` → `"6.3%"`).
pub fn gain(speedup: f64) -> String {
    pct(speedup - 1.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn means() {
        assert_eq!(mean(&[]), 0.0);
        assert_eq!(mean(&[2.0, 4.0]), 3.0);
        assert!((geomean(&[1.0, 4.0]) - 2.0).abs() < 1e-12);
        assert_eq!(geomean(&[]), 0.0);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn geomean_rejects_nonpositive() {
        geomean(&[1.0, 0.0]);
    }

    #[test]
    fn formatting() {
        assert_eq!(pct(0.063), "6.3%");
        assert_eq!(gain(1.063), "6.3%");
        assert_eq!(gain(0.95), "-5.0%");
    }
}
