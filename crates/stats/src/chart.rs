//! ASCII horizontal bar charts — the text-mode rendering of the paper's
//! grouped-bar figures.

use std::fmt;

/// A grouped horizontal bar chart: one group per label, one bar per series.
#[derive(Debug, Clone, PartialEq)]
pub struct BarChart {
    title: String,
    /// Series names (legend).
    series: Vec<String>,
    /// (label, values-per-series).
    groups: Vec<(String, Vec<f64>)>,
    /// Printed after each value (e.g. `"%"`).
    unit: String,
    width: usize,
}

impl BarChart {
    /// Creates a chart with the given title and series legend.
    pub fn new(title: impl Into<String>, series: Vec<String>) -> BarChart {
        BarChart {
            title: title.into(),
            series,
            groups: Vec::new(),
            unit: String::new(),
            width: 48,
        }
    }

    /// Sets the unit suffix shown after values.
    pub fn unit(mut self, unit: impl Into<String>) -> BarChart {
        self.unit = unit.into();
        self
    }

    /// Sets the maximum bar width in characters.
    pub fn width(mut self, width: usize) -> BarChart {
        assert!(width >= 8, "bars need at least 8 characters");
        self.width = width;
        self
    }

    /// Adds a labelled group of per-series values.
    ///
    /// # Panics
    /// Panics if the value count differs from the series count.
    pub fn group(&mut self, label: impl Into<String>, values: Vec<f64>) -> &mut BarChart {
        assert_eq!(
            values.len(),
            self.series.len(),
            "value count must match series count"
        );
        self.groups.push((label.into(), values));
        self
    }
}

impl fmt::Display for BarChart {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "{}", self.title)?;
        let max = self
            .groups
            .iter()
            .flat_map(|(_, vs)| vs.iter())
            .fold(0.0f64, |m, &v| m.max(v.abs()))
            .max(1e-12);
        let label_w = self
            .groups
            .iter()
            .map(|(l, _)| l.len())
            .chain(self.series.iter().map(|s| s.len()))
            .max()
            .unwrap_or(4);
        let marks = ['#', '=', '+', '-', '~', ':', '*', '.'];
        for (i, name) in self.series.iter().enumerate() {
            writeln!(f, "  {} {}", marks[i % marks.len()], name)?;
        }
        for (label, values) in &self.groups {
            for (i, &v) in values.iter().enumerate() {
                let n = ((v.abs() / max) * self.width as f64).round() as usize;
                let bar: String = std::iter::repeat_n(marks[i % marks.len()], n).collect();
                let lab = if i == 0 { label.as_str() } else { "" };
                writeln!(
                    f,
                    "{lab:>label_w$} |{bar:<bw$} {v:.1}{u}",
                    bw = self.width,
                    u = self.unit
                )?;
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_scaled_bars() {
        let mut c = BarChart::new("Speedup", vec!["SOS".into(), "Both".into()])
            .unit("%")
            .width(10);
        c.group("BFV1", vec![15.0, 19.4]);
        c.group("Coll1", vec![0.5, 0.6]);
        let s = c.to_string();
        assert!(s.contains("Speedup"));
        assert!(s.contains("BFV1"));
        // The largest value fills the full width.
        assert!(s.contains(&"=".repeat(10)), "chart was:\n{s}");
        // Small values render short bars, not full ones.
        assert!(!s.contains(&"#".repeat(10)));
        assert!(s.contains("19.4%"));
    }

    #[test]
    fn zero_values_render() {
        let mut c = BarChart::new("t", vec!["a".into()]);
        c.group("x", vec![0.0]);
        assert!(c.to_string().contains("0.0"));
    }

    #[test]
    #[should_panic(expected = "value count")]
    fn group_width_mismatch_panics() {
        BarChart::new("t", vec!["a".into(), "b".into()]).group("x", vec![1.0]);
    }
}
