//! Aligned text tables with CSV export.

use std::fmt;

/// A simple column-aligned table.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Table {
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates a table with the given column headers.
    pub fn new(header: Vec<String>) -> Table {
        Table {
            header,
            rows: Vec::new(),
        }
    }

    /// Appends a row.
    ///
    /// # Panics
    /// Panics if the row width differs from the header width.
    pub fn row(&mut self, cells: Vec<String>) -> &mut Table {
        assert_eq!(cells.len(), self.header.len(), "row width mismatch");
        self.rows.push(cells);
        self
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// True when the table has no data rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Renders as CSV (header + rows). Cells containing commas or quotes
    /// are quoted.
    pub fn to_csv(&self) -> String {
        fn esc(cell: &str) -> String {
            if cell.contains([',', '"', '\n']) {
                format!("\"{}\"", cell.replace('"', "\"\""))
            } else {
                cell.to_owned()
            }
        }
        let mut out = String::new();
        out.push_str(
            &self
                .header
                .iter()
                .map(|c| esc(c))
                .collect::<Vec<_>>()
                .join(","),
        );
        out.push('\n');
        for row in &self.rows {
            out.push_str(&row.iter().map(|c| esc(c)).collect::<Vec<_>>().join(","));
            out.push('\n');
        }
        out
    }
}

impl fmt::Display for Table {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut widths: Vec<usize> = self.header.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.len());
            }
        }
        let line = |f: &mut fmt::Formatter<'_>, cells: &[String]| -> fmt::Result {
            for (i, cell) in cells.iter().enumerate() {
                if i == 0 {
                    // First column left-aligned (names).
                    write!(f, "{:<w$}", cell, w = widths[i])?;
                } else {
                    write!(f, "  {:>w$}", cell, w = widths[i])?;
                }
            }
            writeln!(f)
        };
        line(f, &self.header)?;
        let total: usize = widths.iter().sum::<usize>() + 2 * (widths.len() - 1);
        writeln!(f, "{}", "-".repeat(total))?;
        for row in &self.rows {
            line(f, row)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Table {
        let mut t = Table::new(vec!["trace".into(), "speedup".into()]);
        t.row(vec!["BFV1".into(), "19.4%".into()]);
        t.row(vec!["Coll1".into(), "0.6%".into()]);
        t
    }

    #[test]
    fn display_aligns_columns() {
        let s = sample().to_string();
        let lines: Vec<&str> = s.lines().collect();
        assert!(lines[0].contains("trace"));
        assert!(lines[1].starts_with("---"));
        assert!(lines[2].starts_with("BFV1"));
        // Right-aligned numeric column: both rows end at the same offset.
        assert_eq!(lines[2].len(), lines[3].len());
    }

    #[test]
    fn csv_round_trip() {
        let csv = sample().to_csv();
        assert_eq!(csv.lines().count(), 3);
        assert!(csv.starts_with("trace,speedup\n"));
    }

    #[test]
    fn csv_escapes_commas_and_quotes() {
        let mut t = Table::new(vec!["a".into()]);
        t.row(vec!["x,y".into()]);
        t.row(vec!["say \"hi\"".into()]);
        let csv = t.to_csv();
        assert!(csv.contains("\"x,y\""));
        assert!(csv.contains("\"say \"\"hi\"\"\""));
    }

    #[test]
    #[should_panic(expected = "row width mismatch")]
    fn width_mismatch_panics() {
        Table::new(vec!["a".into(), "b".into()]).row(vec!["only-one".into()]);
    }

    #[test]
    fn emptiness() {
        let t = Table::new(vec!["a".into()]);
        assert!(t.is_empty());
        assert_eq!(sample().len(), 2);
    }
}
