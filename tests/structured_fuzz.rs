//! Structured-program fuzzing: generate random *well-formed* kernels
//! (nested if/else with convergence barriers, uniform and divergent loops,
//! memory ops on both writeback paths, predicated exits) and check the
//! simulator's global invariants under every scheduling mode.
//!
//! The invariants:
//! 1. Termination — no deadlock, no watchdog panic, under baseline and
//!    every SI configuration.
//! 2. Schedule independence — SIMT functional semantics don't depend on
//!    the interleaving, so the executed warp-instruction count and the
//!    per-thread architectural results are identical across configs.
//! 3. Determinism — identical runs produce identical statistics.

use proptest::prelude::*;
use subwarp_core::{
    DivergeOrder, InitValue, SelectPolicy, SiConfig, Simulator, SmConfig, Workload,
};
use subwarp_isa::{Barrier, CmpOp, Operand, Pred, Program, ProgramBuilder, Reg, Scoreboard};

/// A recursive structured-code shape.
#[derive(Debug, Clone)]
enum Block {
    /// `pad` ALU instructions.
    Math { pad: u8 },
    /// A load (alternating LSU/TEX path by `tex`) plus its dependent use.
    Load { tex: bool, stride_reg: u8 },
    /// Divergent if/else on `lane < split`, wrapped in BSSY/BSYNC.
    IfElse { split: u8, then_b: Box<Block>, else_b: Box<Block> },
    /// A uniform counted loop around a body.
    Loop { trips: u8, body: Box<Block> },
    /// Two blocks in sequence.
    Seq(Box<Block>, Box<Block>),
}

fn block_strategy() -> impl Strategy<Value = Block> {
    let leaf = prop_oneof![
        (1u8..8).prop_map(|pad| Block::Math { pad }),
        (any::<bool>(), 1u8..4).prop_map(|(tex, s)| Block::Load { tex, stride_reg: s }),
    ];
    leaf.prop_recursive(3, 24, 4, |inner| {
        prop_oneof![
            (1u8..32, inner.clone(), inner.clone()).prop_map(|(split, t, e)| Block::IfElse {
                split,
                then_b: Box::new(t),
                else_b: Box::new(e),
            }),
            (1u8..4, inner.clone()).prop_map(|(trips, b)| Block::Loop {
                trips,
                body: Box::new(b)
            }),
            (inner.clone(), inner).prop_map(|(a, b)| Block::Seq(Box::new(a), Box::new(b))),
        ]
    })
}

/// Emission context threading barrier/scoreboard/loop-register allocation.
struct Emitter {
    b: ProgramBuilder,
    depth: u8,
    next_sb: u8,
    next_loop_reg: u8,
}

impl Emitter {
    fn emit(&mut self, block: &Block) {
        match block {
            Block::Math { pad } => {
                for i in 0..*pad {
                    self.b.ffma(
                        Reg(40),
                        Reg(40),
                        Operand::fimm(1.0 + i as f32 * 1e-6),
                        Operand::fimm(0.5),
                    );
                }
            }
            Block::Load { tex, stride_reg } => {
                let sb = Scoreboard(self.next_sb % 6);
                self.next_sb += 1;
                // Address = R1 (per-thread base) advanced by a stride so
                // repeated loads touch fresh lines.
                self.b.iadd(Reg(1), Reg(1), Operand::imm(*stride_reg as i64 * 128 + 128));
                if *tex {
                    self.b.tld(Reg(41), Reg(1)).wr_sb(sb);
                } else {
                    self.b.ldg(Reg(41), Reg(1), 0).wr_sb(sb);
                }
                self.b.fadd(Reg(40), Reg(41), Operand::reg(40)).req_sb(sb);
            }
            Block::IfElse { split, then_b, else_b } => {
                let bar = Barrier(self.depth);
                self.depth += 1;
                let else_l = self.b.label(&format!("else{}", self.b.here()));
                let sync = self.b.label(&format!("sync{}", self.b.here()));
                // P0 = lane < split (R0 holds the lane id).
                self.b.isetp(Pred(0), Reg(0), Operand::imm(*split as i64), CmpOp::Lt);
                self.b.bssy(bar, sync);
                self.b.bra(else_l).pred(Pred(0), false);
                self.emit(then_b);
                self.b.bra(sync);
                self.b.place(else_l);
                self.emit(else_b);
                self.b.bra(sync);
                self.b.place(sync);
                self.b.bsync(bar);
                self.depth -= 1;
            }
            Block::Loop { trips, body } => {
                let reg = Reg(50 + self.next_loop_reg % 8);
                let pred = Pred(1 + (self.next_loop_reg % 5));
                self.next_loop_reg += 1;
                self.b.mov(reg, Operand::imm(*trips as i64));
                let top = self.b.label(&format!("loop{}", self.b.here()));
                self.b.place(top);
                self.emit(body);
                self.b.iadd(reg, reg, Operand::imm(-1));
                self.b.isetp(pred, reg, Operand::imm(0), CmpOp::Gt);
                self.b.bra(top).pred(pred, false);
            }
            Block::Seq(a, c) => {
                self.emit(a);
                self.emit(c);
            }
        }
    }
}

fn build_program(block: &Block) -> Program {
    let mut e = Emitter { b: ProgramBuilder::new(), depth: 0, next_sb: 0, next_loop_reg: 0 };
    e.emit(block);
    // Write the accumulator out so functional results are observable.
    e.b.imad(Reg(2), Reg(0), Operand::imm(8), Operand::imm(1 << 28));
    e.b.stg(Reg(40), Reg(2), 0);
    e.b.exit();
    e.b.build().expect("structured generator emits valid programs")
}

fn workload(block: &Block, n_warps: usize) -> Workload {
    Workload::new("fuzz", build_program(block), n_warps)
        .with_init(Reg(0), InitValue::LaneId)
        .with_init(Reg(1), InitValue::GlobalTid)
        .with_init(Reg(40), InitValue::Const(0))
}

fn all_configs() -> Vec<(SmConfig, SiConfig)> {
    let base = SmConfig::turing_like();
    let mut rand_order = base.clone();
    rand_order.diverge_order = DivergeOrder::Random;
    let mut taken = base.clone();
    taken.diverge_order = DivergeOrder::TakenFirst;
    vec![
        (base.clone(), SiConfig::disabled()),
        (base.clone(), SiConfig::sos(SelectPolicy::AnyStalled)),
        (base.clone(), SiConfig::sos(SelectPolicy::AllStalled)),
        (base.clone(), SiConfig::best()),
        (base.clone(), SiConfig::best().with_max_subwarps(2)),
        (base, SiConfig::dws_like()),
        (rand_order, SiConfig::best()),
        (taken, SiConfig::sos(SelectPolicy::HalfStalled)),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 24, ..ProptestConfig::default() })]

    #[test]
    fn structured_kernels_terminate_and_are_schedule_independent(
        block in block_strategy(),
        n_warps in 1usize..4,
    ) {
        let wl = workload(&block, n_warps);
        let mut instruction_counts = Vec::new();
        for (sm, si) in all_configs() {
            let sim = Simulator::new(sm, si);
            let stats = sim.run(&wl); // would panic on deadlock
            prop_assert!(stats.cycles > 0);
            // Determinism.
            prop_assert_eq!(&sim.run(&wl), &stats);
            instruction_counts.push(stats.instructions);
        }
        // Schedule independence: every config executed the same number of
        // warp instructions (SIMT functional semantics are
        // interleaving-invariant; only cycle counts may differ).
        let first = instruction_counts[0];
        prop_assert!(
            instruction_counts.iter().all(|&c| c == first),
            "instruction counts diverged: {:?}",
            instruction_counts
        );
    }
}

/// A fixed deep-nesting smoke case (3 levels of divergence with loops and
/// both memory paths) that would have caught convergence-barrier bugs
/// without waiting on proptest's shrinking.
#[test]
fn deep_nesting_smoke() {
    let block = Block::IfElse {
        split: 11,
        then_b: Box::new(Block::Loop {
            trips: 2,
            body: Box::new(Block::IfElse {
                split: 5,
                then_b: Box::new(Block::Load { tex: false, stride_reg: 1 }),
                else_b: Box::new(Block::Seq(
                    Box::new(Block::Math { pad: 3 }),
                    Box::new(Block::Load { tex: true, stride_reg: 2 }),
                )),
            }),
        }),
        else_b: Box::new(Block::IfElse {
            split: 23,
            then_b: Box::new(Block::Load { tex: true, stride_reg: 3 }),
            else_b: Box::new(Block::Loop {
                trips: 3,
                body: Box::new(Block::Math { pad: 5 }),
            }),
        }),
    };
    let wl = workload(&block, 2);
    let base = Simulator::new(SmConfig::turing_like(), SiConfig::disabled()).run(&wl);
    let si = Simulator::new(SmConfig::turing_like(), SiConfig::best()).run(&wl);
    assert_eq!(base.instructions, si.instructions);
    assert!(si.cycles <= base.cycles, "SI should help nested divergent loads");
    assert!(base.divergences >= 2, "nesting must actually diverge");
}
