//! Structured-program fuzzing: generate random *well-formed* kernels
//! (nested if/else with convergence barriers, uniform loops, loads on all
//! three latency classes) via the `subwarp-fuzz` generator and check the
//! simulator's global invariants under every scheduling mode.
//!
//! The invariants:
//! 1. Termination — no deadlock, no watchdog error, under baseline and
//!    every SI configuration.
//! 2. Schedule independence — SIMT functional semantics don't depend on
//!    the interleaving, so the executed warp-instruction count and the
//!    per-thread architectural results are identical across configs.
//! 3. Determinism — identical runs produce identical statistics.
//!
//! Cases are drawn from a fixed seed range so the suite is deterministic;
//! a failing case prints the seed, replayable with
//! `cargo run -p subwarp-fuzz -- --seed <N> --iters 1`.

use subwarp_core::{SiConfig, Simulator, SmConfig};
use subwarp_fuzz::{build_workload, check_seed, Block, FuzzReport, LoadClass};

#[test]
fn structured_kernels_terminate_and_are_schedule_independent() {
    // The full differential oracle over a deterministic seed range: each
    // seed's program runs under the whole baseline + SelectPolicy ×
    // DivergeOrder grid with instruction counts and memory images compared
    // bit for bit.
    let mut report = FuzzReport::default();
    for seed in 1000..1024u64 {
        if let Err(d) = check_seed(seed, &mut report) {
            panic!("schedule divergence: {d}");
        }
    }
    assert_eq!(report.programs, 24);
    assert!(report.instructions > 0);
}

#[test]
fn repeated_runs_are_deterministic() {
    let wl = subwarp_fuzz::random_workload(7);
    for si in [SiConfig::disabled(), SiConfig::best(), SiConfig::dws_like()] {
        let sim = Simulator::new(SmConfig::turing_like(), si);
        assert_eq!(sim.run(&wl).unwrap(), sim.run(&wl).unwrap());
    }
}

/// A fixed deep-nesting smoke case (3 levels of divergence with loops and
/// both memory paths) that exercises convergence-barrier handling without
/// any randomness at all.
#[test]
fn deep_nesting_smoke() {
    let block = Block::IfElse {
        split: 11,
        then_b: Box::new(Block::Loop {
            trips: 2,
            body: Box::new(Block::IfElse {
                split: 5,
                then_b: Box::new(Block::Load {
                    class: LoadClass::Global,
                    stride: 1,
                }),
                else_b: Box::new(Block::Seq(
                    Box::new(Block::Math { pad: 3 }),
                    Box::new(Block::Load {
                        class: LoadClass::Texture,
                        stride: 2,
                    }),
                )),
            }),
        }),
        else_b: Box::new(Block::IfElse {
            split: 23,
            then_b: Box::new(Block::Load {
                class: LoadClass::Texture,
                stride: 3,
            }),
            else_b: Box::new(Block::Loop {
                trips: 3,
                body: Box::new(Block::Math { pad: 5 }),
            }),
        }),
    };
    let wl = build_workload(&block, 2);
    let base = Simulator::new(SmConfig::turing_like(), SiConfig::disabled())
        .run(&wl)
        .unwrap();
    let si = Simulator::new(SmConfig::turing_like(), SiConfig::best())
        .run(&wl)
        .unwrap();
    assert_eq!(base.instructions, si.instructions);
    assert!(
        si.cycles <= base.cycles,
        "SI should help nested divergent loads"
    );
    assert!(base.divergences >= 2, "nesting must actually diverge");
}
