//! End-to-end profiler tests: attaching a `Profiler` must not perturb the
//! simulation, and the emitted Chrome trace-event JSON must be structurally
//! sound for a real suite workload (the dependency-free counterpart of
//! loading it in Perfetto).

use subwarp_interleaving::core::{ChromeTraceProfiler, SiConfig, Simulator, SmConfig};
use subwarp_interleaving::workloads::{built_suite, figure9_workload};

/// Minimal structural JSON check: balanced brackets outside strings, valid
/// escapes, and a single top-level value. Not a full parser — just enough to
/// catch truncated output, unescaped quotes, and mismatched nesting, which
/// are the failure modes of hand-rendered JSON.
fn assert_json_sound(json: &str) {
    let mut depth: Vec<char> = Vec::new();
    let mut in_string = false;
    let mut escaped = false;
    let mut top_level_values = 0usize;
    for (i, c) in json.char_indices() {
        if in_string {
            if escaped {
                escaped = false;
            } else if c == '\\' {
                escaped = true;
            } else if c == '"' {
                in_string = false;
            } else {
                assert!(c >= ' ', "raw control character at byte {i}");
            }
            continue;
        }
        match c {
            '"' => in_string = true,
            '{' | '[' => {
                if depth.is_empty() {
                    top_level_values += 1;
                }
                depth.push(c);
            }
            '}' => assert_eq!(depth.pop(), Some('{'), "mismatched `}}` at byte {i}"),
            ']' => assert_eq!(depth.pop(), Some('['), "mismatched `]` at byte {i}"),
            _ => {}
        }
    }
    assert!(!in_string, "unterminated string literal");
    assert!(depth.is_empty(), "unclosed brackets: {depth:?}");
    assert_eq!(top_level_values, 1, "expected exactly one top-level value");
}

#[test]
fn profiling_is_observation_not_actuation() {
    // Identical RunStats with and without a profiler attached, for the toy
    // and for a real trace, baseline and SI.
    let suite = built_suite();
    let (_, trace_wl) = &suite[0];
    for wl in [&figure9_workload(), trace_wl.as_ref()] {
        for si in [SiConfig::disabled(), SiConfig::best()] {
            let sim = Simulator::new(SmConfig::turing_like(), si);
            let plain = sim.run(wl).unwrap();
            let mut profiler = ChromeTraceProfiler::new();
            let profiled = sim.run_profiled(wl, &mut profiler).unwrap();
            assert_eq!(plain, profiled, "{} / {}", wl.name, si.label());
            assert!(profiler.event_count() > 0, "{}", wl.name);
        }
    }
}

#[test]
fn chrome_trace_json_is_structurally_sound_for_a_suite_workload() {
    let suite = built_suite();
    let (spec, wl) = &suite[0];
    let mut profiler = ChromeTraceProfiler::new();
    Simulator::new(SmConfig::turing_like(), SiConfig::best())
        .run_profiled(wl, &mut profiler)
        .unwrap();
    let json = profiler.to_json();
    assert!(!json.is_empty(), "{}: empty trace", spec.name);
    assert_json_sound(&json);
    // The trace-event envelope and every track family are present.
    for needle in [
        "\"traceEvents\"",
        "\"displayTimeUnit\"",
        "\"ph\":\"X\"",
        "\"ph\":\"M\"",
        "\"ph\":\"C\"",
        "issued",
        "load-stall",
        "L1D hit rate",
        "LSU in-flight",
    ] {
        assert!(json.contains(needle), "{}: missing {needle}", spec.name);
    }
}
