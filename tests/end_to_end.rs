//! Cross-crate integration tests: the full pipeline from scene → BVH →
//! megakernel → cycle-level simulation → statistics.

use subwarp_interleaving::core::{
    InitValue, SelectPolicy, SiConfig, Simulator, SmConfig, Workload,
};
use subwarp_interleaving::isa::{Operand, ProgramBuilder, Reg, Scoreboard};
use subwarp_interleaving::workloads::{
    figure9_workload, microbenchmark, suite, trace_by_name, MegakernelConfig, SceneKind,
    ShaderProfile,
};

#[test]
fn every_suite_trace_runs_on_every_config() {
    let sms = SmConfig::turing_like();
    for t in suite() {
        let wl = t.build();
        let base = Simulator::new(sms.clone(), SiConfig::disabled())
            .run(&wl)
            .unwrap();
        let si = Simulator::new(sms.clone(), SiConfig::best())
            .run(&wl)
            .unwrap();
        assert!(
            base.cycles > 0 && si.cycles > 0,
            "{} produced empty runs",
            t.name
        );
        assert_eq!(
            base.instructions, si.instructions,
            "{}: SI must not change the executed instruction count",
            t.name
        );
        assert!(base.rt_traversals > 0, "{} never used the RT core", t.name);
    }
}

#[test]
fn si_is_deterministic_across_runs_and_builds() {
    let t = trace_by_name("Ctrl").expect("suite trace");
    let a = Simulator::new(SmConfig::turing_like(), SiConfig::best())
        .run(&t.build())
        .unwrap();
    let b = Simulator::new(SmConfig::turing_like(), SiConfig::best())
        .run(&t.build())
        .unwrap();
    assert_eq!(a, b);
}

#[test]
fn si_never_slows_the_suite_materially() {
    // The paper reports gains 0..20% with no losses beyond noise; allow a
    // 2% regression margin for switch-latency artifacts.
    let base_sim = Simulator::new(SmConfig::turing_like(), SiConfig::disabled());
    let si_sim = Simulator::new(SmConfig::turing_like(), SiConfig::best());
    for t in suite() {
        let wl = t.build();
        let speedup = si_sim
            .run(&wl)
            .unwrap()
            .speedup_vs(&base_sim.run(&wl).unwrap());
        assert!(speedup > 0.98, "{} regressed: {speedup:.3}", t.name);
        assert!(speedup < 1.35, "{} implausibly fast: {speedup:.3}", t.name);
    }
}

#[test]
fn microbenchmark_and_megakernel_share_one_simulator() {
    // The same Simulator instance handles both workload families.
    let sim = Simulator::new(SmConfig::turing_like(), SiConfig::switch_on_stall());
    let micro = sim.run(&microbenchmark(8, 2)).unwrap();
    let mega = sim
        .run(&trace_by_name("AV1").expect("suite trace").build())
        .unwrap();
    assert!(micro.subwarp_stalls > 0);
    assert!(mega.subwarp_stalls > 0);
}

#[test]
fn toy_matches_paper_figure_10_speedup_band() {
    let wl = figure9_workload();
    let base = Simulator::new(SmConfig::turing_like(), SiConfig::disabled())
        .run(&wl)
        .unwrap();
    let si = Simulator::new(
        SmConfig::turing_like(),
        SiConfig::sos(SelectPolicy::AnyStalled),
    )
    .run(&wl)
    .unwrap();
    // Two fully-overlappable divergent misses → close to 2x.
    let speedup = si.speedup_vs(&base);
    assert!((1.7..2.1).contains(&speedup), "got {speedup:.2}");
}

#[test]
fn warp_slot_throttling_changes_resident_warps() {
    let wl = trace_by_name("DDGI").expect("suite trace").build();
    for per_pb in [2usize, 4, 8] {
        let sm = SmConfig::turing_like().with_warp_slots_per_pb(per_pb);
        let s = Simulator::new(sm, SiConfig::disabled()).run(&wl).unwrap();
        assert!(s.peak_resident_warps <= per_pb * 4);
    }
}

#[test]
fn custom_megakernel_with_city_scene_is_low_entropy() {
    let profiles: Vec<ShaderProfile> = (0..4)
        .map(|_| ShaderProfile {
            tex_ops: 1,
            ldg_ops: 1,
            hot_loads: 0,
            math_ops: 4,
            trips: 1,
            code_pad: 8,
        })
        .chain([ShaderProfile::miss()])
        .collect();
    let mk = |scene| {
        MegakernelConfig {
            name: "entropy-test".into(),
            scene,
            bounces: 1,
            n_warps: 8,
            seed: 3,
            profiles: profiles.clone(),
            common_ldg: 0,
            common_math: 4,
        }
        .build()
    };
    let city = mk(SceneKind::City {
        width: 16,
        depth: 4,
        materials: 4,
    });
    let soup = mk(SceneKind::Soup {
        triangles: 3000,
        materials: 4,
    });
    let sim = Simulator::new(SmConfig::turing_like(), SiConfig::disabled());
    let city_div = sim.run(&city).unwrap().divergences;
    let soup_div = sim.run(&soup).unwrap().divergences;
    assert!(
        soup_div > city_div,
        "soup should diverge more: {soup_div} vs {city_div}"
    );
}

#[test]
fn hand_written_kernel_through_the_facade() {
    // The facade crate re-exports everything needed to go from nothing to
    // statistics.
    let mut b = ProgramBuilder::new();
    b.shl(Reg(1), Reg(0), Operand::imm(7));
    b.ldg(Reg(2), Reg(1), 0).wr_sb(Scoreboard(0));
    b.fadd(Reg(3), Reg(2), Operand::fimm(1.0))
        .req_sb(Scoreboard(0));
    b.stg(Reg(3), Reg(1), 64);
    b.exit();
    let wl = Workload::new("facade", b.build().expect("valid"), 4)
        .with_init(Reg(0), InitValue::GlobalTid);
    let s = Simulator::new(SmConfig::turing_like(), SiConfig::disabled())
        .run(&wl)
        .unwrap();
    assert_eq!(s.instructions, 4 * 5);
}

#[test]
fn stats_crate_formats_simulator_output() {
    let wl = microbenchmark(16, 1);
    let s = Simulator::new(SmConfig::turing_like(), SiConfig::disabled())
        .run(&wl)
        .unwrap();
    let mut t = subwarp_interleaving::stats::Table::new(vec!["metric".into(), "value".into()]);
    t.row(vec!["cycles".into(), s.cycles.to_string()]);
    t.row(vec![
        "exposed".into(),
        subwarp_interleaving::stats::pct(s.exposed_ratio()),
    ]);
    let rendered = t.to_string();
    assert!(rendered.contains("cycles"));
    assert!(t.to_csv().lines().count() == 3);
}

#[test]
fn workloads_and_configs_are_plain_data() {
    // Captured traces and configurations are plain owned data (the paper's
    // trace-driven methodology): cloning yields a structurally equal value,
    // so they can be stored, compared, and replayed.
    fn assert_plain<T: Clone + PartialEq + std::fmt::Debug>(v: &T) {
        assert_eq!(*v, v.clone());
    }
    assert_plain(&SmConfig::turing_like());
    assert_plain(&SiConfig::best());
    let wl = trace_by_name("AV2").expect("suite trace").build();
    assert_plain(&wl);
    let stats = Simulator::new(SmConfig::turing_like(), SiConfig::disabled())
        .run(&wl)
        .unwrap();
    assert_plain(&stats);
}

#[test]
fn cornell_scene_megakernel_runs() {
    // The Cornell-like enclosure sits between the soup and city scenes in
    // hit entropy; with 7 wall/block materials the megakernel needs 8
    // profiles.
    let profiles: Vec<ShaderProfile> = (0..7)
        .map(|_| ShaderProfile {
            tex_ops: 1,
            ldg_ops: 0,
            hot_loads: 0,
            math_ops: 6,
            trips: 1,
            code_pad: 8,
        })
        .chain([ShaderProfile::miss()])
        .collect();
    let wl = MegakernelConfig {
        name: "cornell".into(),
        scene: SceneKind::Cornell,
        bounces: 2,
        n_warps: 8,
        seed: 11,
        profiles,
        common_ldg: 1,
        common_math: 4,
    }
    .build();
    let s = Simulator::new(SmConfig::turing_like(), SiConfig::best())
        .run(&wl)
        .unwrap();
    assert!(s.divergences > 0, "walls and blocks must splinter warps");
    assert!(s.rt_traversals > 0);
}
