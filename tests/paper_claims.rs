//! Qualitative paper-claim tests: every headline statement of *GPU Subwarp
//! Interleaving* that our reproduction is expected to exhibit, asserted as
//! an executable check. These run the real experiment pipelines (reduced
//! sizes where noted), so they are the living version of EXPERIMENTS.md.

use subwarp_bench::{fig12b, fig3, gain_pct, table3};
use subwarp_core::{SelectPolicy, SiConfig, Simulator, SmConfig};
use subwarp_stats::mean;
use subwarp_workloads::{suite, trace_by_name};

/// §I / Figure 3: raytracing kernels are "often stalled waiting for memory,
/// and a significant percentage of those stalls are in divergent code
/// regions".
#[test]
fn fig3_stall_characterization_shape() {
    let rows = fig3().unwrap();
    let total_mean = mean(&rows.iter().map(|r| r.total).collect::<Vec<_>>());
    let div_mean = mean(&rows.iter().map(|r| r.divergent).collect::<Vec<_>>());
    // Paper's suite spans ~15–70% total exposure; mean in the tens of %.
    assert!(
        (0.15..0.60).contains(&total_mean),
        "total mean {total_mean}"
    );
    // Divergent stalls are a large minority share of exposure.
    assert!(
        div_mean > 0.3 * total_mean,
        "divergent share too small: {div_mean}"
    );
    assert!(div_mean < total_mean + 1e-9);
    // BFV traces are divergence-dominated; Coll traces are not.
    let get = |n: &str| rows.iter().find(|r| r.name == n).expect("trace present");
    let bfv1 = get("BFV1");
    let coll1 = get("Coll1");
    assert!(
        bfv1.divergent / bfv1.total > 0.9,
        "BFV1 stalls should be divergent"
    );
    assert!(
        coll1.divergent / coll1.total < 0.6,
        "Coll1 stalls should be mostly convergent"
    );
}

/// §V-A / Table III: "SI delivers almost linear speedups until about 16-way
/// divergence before tapering off" and "with 32-way divergence, we see
/// load-to-use stalls decrease [dramatically] ... but instruction fetch
/// stalls rise sharply".
#[test]
fn table3_scaling_and_taper() {
    let rows = table3(8).unwrap(); // reduced iterations for test runtime
    let speedup = |d: usize| {
        rows.iter()
            .find(|r| r.divergence_factor == d)
            .unwrap()
            .speedup
    };
    // Near-linear low end (≥85% efficiency at 2- and 4-way).
    assert!(speedup(2) > 1.7, "2-way: {}", speedup(2));
    assert!(speedup(4) > 3.4, "4-way: {}", speedup(4));
    assert!(speedup(8) > 6.0, "8-way: {}", speedup(8));
    // Strong but sub-linear at 16; taper (no gain, or inversion) at 32.
    assert!(speedup(16) > 10.0, "16-way: {}", speedup(16));
    assert!(
        speedup(32) < speedup(16) * 1.15,
        "32-way should taper: {} vs {}",
        speedup(32),
        speedup(16)
    );
    // The taper's mechanism: fetch stalls rise sharply with divergence.
    let fetch = |d: usize| {
        rows.iter()
            .find(|r| r.divergence_factor == d)
            .unwrap()
            .si_fetch_ratio
    };
    assert!(
        fetch(32) > 4.0 * fetch(4),
        "fetch stalls must spike at 32-way"
    );
}

/// §V-B: SI speeds up the suite; reflections (BFV) benefit most, demos with
/// convergent stalls (Coll) least — "For applications with significant
/// load-to-use stalls where most of the stalls are in divergent code
/// blocks, SI is likely to help (BFV1, BFV2) ... (Coll1, Coll2)" not.
#[test]
fn fig12a_winners_and_losers() {
    let base_sim = Simulator::new(SmConfig::turing_like(), SiConfig::disabled());
    let si_sim = Simulator::new(SmConfig::turing_like(), SiConfig::best());
    let gain = |name: &str| {
        let wl = trace_by_name(name).expect("suite trace").build();
        gain_pct(&si_sim.run(&wl).unwrap(), &base_sim.run(&wl).unwrap())
    };
    let bfv1 = gain("BFV1");
    let coll1 = gain("Coll1");
    let coll2 = gain("Coll2");
    assert!(bfv1 > 10.0, "BFV1 should gain big: {bfv1:.1}%");
    assert!(coll1 < 4.0, "Coll1 should gain little: {coll1:.1}%");
    assert!(coll2 < 5.0, "Coll2 should gain little: {coll2:.1}%");
    assert!(bfv1 > 4.0 * coll1.max(0.1));
}

/// §V-B / Figure 12b: "Divergent stalls dropped by 26.5% on average" —
/// large divergent-stall reductions, and (the paper's subtle point) stall
/// reductions that do NOT translate proportionally into speedup for
/// convergent-stall traces.
#[test]
fn fig12b_stall_reductions() {
    let rows = fig12b().unwrap();
    let div_mean = mean(
        &rows
            .iter()
            .map(|r| r.divergent_reduction)
            .collect::<Vec<_>>(),
    );
    assert!(div_mean > 0.15, "mean divergent reduction {div_mean}");
    // Coll2 shows visible divergent-stall reduction yet (checked above)
    // negligible speedup — the paper's "loose approximation" caveat.
    let coll2 = rows
        .iter()
        .find(|r| r.name == "Coll2")
        .expect("trace present");
    assert!(coll2.divergent_reduction > 0.1);
}

/// §V-C-1 / Figure 13: "Subwarp Interleaving performs better with
/// increasing L1 miss latencies."
#[test]
fn fig13_latency_monotonicity() {
    // Reduced: one config (best), whole suite, three latencies.
    let mut means = Vec::new();
    for lat in [300u64, 600, 900] {
        let sm = SmConfig::turing_like().with_miss_latency(lat);
        let base_sim = Simulator::new(sm.clone(), SiConfig::disabled());
        let si_sim = Simulator::new(sm, SiConfig::best());
        let gains: Vec<f64> = suite()
            .iter()
            .map(|t| {
                let wl = t.build();
                gain_pct(&si_sim.run(&wl).unwrap(), &base_sim.run(&wl).unwrap())
            })
            .collect();
        means.push(mean(&gains));
    }
    assert!(
        means[0] < means[1] && means[1] < means[2],
        "gains should grow with latency: {means:?}"
    );
}

/// §V-C-3 / Figure 15: "Even with support for as little as 2 subwarps per
/// warp, Subwarp Interleaving is able to achieve [most of the] speedup,
/// with speedups increasing sub-linearly with more subwarps per warp."
#[test]
fn fig15_small_tst_captures_most_upside() {
    let base_sim = Simulator::new(SmConfig::turing_like(), SiConfig::disabled());
    let mean_gain = |n: usize| {
        let si_sim = Simulator::new(
            SmConfig::turing_like(),
            SiConfig::best().with_max_subwarps(n),
        );
        let gains: Vec<f64> = suite()
            .iter()
            .map(|t| {
                let wl = t.build();
                gain_pct(&si_sim.run(&wl).unwrap(), &base_sim.run(&wl).unwrap())
            })
            .collect();
        mean(&gains)
    };
    let two = mean_gain(2);
    let four = mean_gain(4);
    let unlimited = mean_gain(32);
    assert!(
        two > 0.6 * unlimited,
        "2 subwarps: {two:.1}% vs unlimited {unlimited:.1}%"
    );
    assert!(four >= two - 0.3, "4 subwarps should not lose to 2");
    assert!(
        four > 0.8 * unlimited,
        "4 subwarps capture ≥80% (paper: 82%)"
    );
}

/// §V-C-4: with 4× smaller instruction caches, most of the upside remains
/// (paper: ~70%).
#[test]
fn icache_sizing_keeps_most_upside() {
    let mean_gain = |sm: SmConfig| {
        let base_sim = Simulator::new(sm.clone(), SiConfig::disabled());
        let si_sim = Simulator::new(sm, SiConfig::best());
        let gains: Vec<f64> = suite()
            .iter()
            .map(|t| {
                let wl = t.build();
                gain_pct(&si_sim.run(&wl).unwrap(), &base_sim.run(&wl).unwrap())
            })
            .collect();
        mean(&gains)
    };
    let big = mean_gain(SmConfig::turing_like());
    let small = mean_gain(SmConfig::turing_like().with_small_icaches());
    // The paper retains ~70% of the upside with 4x smaller caches; our
    // model retains at least that (and sometimes more, because SI also
    // hides the *fetch* latency that small caches expose in the baseline —
    // see EXPERIMENTS.md).
    assert!(
        small > 0.5 * big,
        "small caches keep most upside: {small:.1} vs {big:.1}"
    );
    assert!(
        small < big * 2.0,
        "small-cache gains should stay comparable"
    );
}

/// §III-C-3: the trigger-policy knob orders aggressiveness — N=1 is the
/// most conservative (fewest demotions), N>0 the most aggressive.
#[test]
fn policy_knob_orders_demotions() {
    let wl = trace_by_name("MC").expect("suite trace").build();
    let demotions = |p| {
        Simulator::new(SmConfig::turing_like(), SiConfig::sos(p))
            .run(&wl)
            .unwrap()
            .subwarp_stalls
    };
    let all = demotions(SelectPolicy::AllStalled);
    let half = demotions(SelectPolicy::HalfStalled);
    let any = demotions(SelectPolicy::AnyStalled);
    assert!(
        all <= half && half <= any,
        "demotions: N=1 {all}, N>=0.5 {half}, N>0 {any}"
    );
}

/// §VI limiter #2: traversal latency is an Amdahl component SI cannot
/// attack — traversal-heavy DDGI gains less than shading-heavy BFV1.
#[test]
fn traversal_amdahl_limits_ddgi() {
    let base_sim = Simulator::new(SmConfig::turing_like(), SiConfig::disabled());
    let si_sim = Simulator::new(SmConfig::turing_like(), SiConfig::best());
    let run = |name: &str| {
        let wl = trace_by_name(name).expect("suite trace").build();
        let b = base_sim.run(&wl).unwrap();
        let s = si_sim.run(&wl).unwrap();
        (
            gain_pct(&s, &b),
            b.exposed_traversal_stalls as f64 / b.cycles as f64,
        )
    };
    let (ddgi_gain, ddgi_trav) = run("DDGI");
    let (bfv_gain, _) = run("BFV1");
    assert!(
        ddgi_trav > 0.03,
        "DDGI should be traversal-heavy: {ddgi_trav}"
    );
    assert!(
        ddgi_gain < bfv_gain / 2.0,
        "DDGI {ddgi_gain:.1}% vs BFV1 {bfv_gain:.1}%"
    );
}

/// §VI future work: software stall hints — "prefer the higher load stall
/// probability path first and use the other path for latency tolerance" —
/// should beat order-oblivious policies.
#[test]
fn stall_hints_beat_oblivious_orders() {
    use subwarp_core::DivergeOrder;
    let mean_gain = |order: DivergeOrder| {
        let mut sm = SmConfig::turing_like();
        sm.diverge_order = order;
        let base_sim = Simulator::new(sm.clone(), SiConfig::disabled());
        let si_sim = Simulator::new(sm, SiConfig::best());
        let gains: Vec<f64> = suite()
            .iter()
            .map(|t| {
                let wl = t.build();
                gain_pct(&si_sim.run(&wl).unwrap(), &base_sim.run(&wl).unwrap())
            })
            .collect();
        mean(&gains)
    };
    let hinted = mean_gain(DivergeOrder::Hinted);
    let fallthrough = mean_gain(DivergeOrder::FallthroughFirst);
    let random = mean_gain(DivergeOrder::Random);
    assert!(
        hinted > fallthrough && hinted > random,
        "hinted {hinted:.1}% vs fallthrough {fallthrough:.1}% / random {random:.1}%"
    );
}

/// §VI: "We profiled a broad suite of more than 400 non-raytracing CUDA and
/// Direct3D compute kernels ... none benefited beyond the margin of noise
/// from SI." SI must be inert on ordinary compute.
#[test]
fn compute_kernels_do_not_benefit() {
    for row in subwarp_bench::compute_negative_result().unwrap() {
        assert!(
            row.gain.abs() < 3.0,
            "{} gained {:.1}% — beyond the margin of noise",
            row.name,
            row.gain
        );
        // And the reason: no (or negligible) stalls in divergent code.
        assert!(
            row.divergent < 0.05 || row.gain.abs() < 3.0,
            "{}: divergent exposure {:.1}% should not translate to gains",
            row.name,
            row.divergent * 100.0
        );
    }
}
