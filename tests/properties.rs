//! Property-based tests (proptest) over the substrates and the simulator's
//! global invariants.

use proptest::prelude::*;
use subwarp_interleaving::core::{
    InitValue, SelectPolicy, SiConfig, Simulator, SmConfig, Workload,
};
use subwarp_interleaving::isa::{CmpOp, Operand, ProgramBuilder, Reg, SbMask, Scoreboard};
use subwarp_interleaving::mem::{AccessKind, Cache, CacheConfig, ServiceUnit};
use subwarp_interleaving::rt::{Bvh, Ray, Scene, Vec3};
use subwarp_interleaving::workloads::{microbenchmark_with, MicroConfig};

// ---------------------------------------------------------------- caches

/// A trivially correct fully-explicit LRU reference model.
struct RefCache {
    line: u64,
    sets: usize,
    ways: usize,
    // Per set: lines in LRU order (front = most recent).
    state: Vec<Vec<u64>>,
}

impl RefCache {
    fn new(cfg: CacheConfig) -> RefCache {
        RefCache {
            line: cfg.line_bytes,
            sets: cfg.sets(),
            ways: cfg.ways,
            state: vec![Vec::new(); cfg.sets()],
        }
    }

    fn access(&mut self, addr: u64) -> AccessKind {
        let tag = addr / self.line;
        let set = (tag as usize) % self.sets;
        let lines = &mut self.state[set];
        if let Some(pos) = lines.iter().position(|&t| t == tag) {
            let t = lines.remove(pos);
            lines.insert(0, t);
            AccessKind::Hit
        } else {
            lines.insert(0, tag);
            lines.truncate(self.ways);
            AccessKind::Miss
        }
    }
}

proptest! {
    #[test]
    fn cache_matches_lru_reference(
        addrs in prop::collection::vec(0u64..(1 << 14), 1..400),
        ways in 1usize..4,
    ) {
        let cfg = CacheConfig { size_bytes: (ways as u64) * 4 * 64, line_bytes: 64, ways };
        let mut dut = Cache::new(cfg);
        let mut reference = RefCache::new(cfg);
        for &a in &addrs {
            prop_assert_eq!(dut.access(a), reference.access(a), "at address {:#x}", a);
        }
    }

    #[test]
    fn cache_stats_add_up(addrs in prop::collection::vec(0u64..(1 << 16), 1..300)) {
        let mut c = Cache::new(CacheConfig::l1_data());
        for &a in &addrs {
            c.access(a);
        }
        let s = c.stats();
        prop_assert_eq!(s.accesses(), addrs.len() as u64);
        prop_assert!(s.miss_ratio() >= 0.0 && s.miss_ratio() <= 1.0);
    }

    // ---------------------------------------------------------- service unit

    #[test]
    fn service_unit_completes_everything_in_order(
        reqs in prop::collection::vec((0u64..1000, 0u32..100), 1..200)
    ) {
        let mut u = ServiceUnit::new();
        for &(ready, payload) in &reqs {
            u.push(ready, payload);
        }
        let done = u.pop_ready(2000);
        prop_assert_eq!(done.len(), reqs.len());
        prop_assert!(u.is_empty());
        // Completion cycles are monotone.
        for w in done.windows(2) {
            prop_assert!(w[0].at_cycle <= w[1].at_cycle);
        }
        // Nothing completes before its ready cycle.
        let mut u = ServiceUnit::new();
        for &(ready, payload) in &reqs {
            u.push(ready, payload);
        }
        let min_ready = reqs.iter().map(|&(r, _)| r).min().unwrap();
        if min_ready > 0 {
            prop_assert!(u.pop_ready(min_ready - 1).is_empty());
        }
    }

    // ------------------------------------------------------------------ BVH

    #[test]
    fn bvh_traversal_matches_brute_force(
        n_tris in 1usize..120,
        seed in 0u64..1000,
        ox in -3.0f32..3.0,
        oy in -3.0f32..3.0,
        dx in -1.0f32..1.0,
        dy in -1.0f32..1.0,
    ) {
        let scene = Scene::random_soup(n_tris, seed);
        let bvh = Bvh::build(&scene);
        let ray = Ray::new(Vec3::new(ox, oy, -10.0), Vec3::new(dx, dy, 1.0));
        let got = bvh.traverse(&ray).hit;
        let mut want: Option<(u32, f32)> = None;
        for (i, t) in scene.triangles().iter().enumerate() {
            if let Some(d) = t.intersect(&ray) {
                if want.is_none_or(|(_, bd)| d < bd) {
                    want = Some((i as u32, d));
                }
            }
        }
        match (got, want) {
            (None, None) => {}
            (Some(h), Some((i, d))) => {
                prop_assert_eq!(h.triangle, i);
                prop_assert!((h.t - d).abs() < 1e-4);
            }
            (g, w) => prop_assert!(false, "bvh {:?} vs brute {:?}", g, w),
        }
    }

    // ------------------------------------------------------------------ ISA

    #[test]
    fn sbmask_set_semantics(ids in prop::collection::vec(0u8..8, 0..16)) {
        let mask: SbMask = ids.iter().map(|&i| Scoreboard(i)).collect();
        for i in 0..8u8 {
            prop_assert_eq!(mask.contains(Scoreboard(i)), ids.contains(&i));
        }
        prop_assert_eq!(mask.is_empty(), ids.is_empty());
    }

    #[test]
    fn builder_rejects_dangling_scoreboards(sb in 8u8..255) {
        let mut b = ProgramBuilder::new();
        b.ldg(Reg(0), Reg(1), 0).wr_sb(Scoreboard(sb));
        b.exit();
        prop_assert!(b.build().is_err());
    }

    // -------------------------------------------------------- simulator laws

    #[test]
    fn simulator_is_deterministic_on_random_micro_configs(
        subwarp_shift in 0u32..6,
        iterations in 1u32..3,
        loads in 1usize..4,
        pad in 0usize..16,
    ) {
        let cfg = MicroConfig {
            subwarp_size: 1 << subwarp_shift,
            iterations,
            loads_per_iter: loads,
            body_pad: pad,
            n_warps: 2,
        };
        let wl = microbenchmark_with(cfg);
        let sim = Simulator::new(SmConfig::turing_like(), SiConfig::best());
        prop_assert_eq!(sim.run(&wl), sim.run(&wl));
    }

    #[test]
    fn si_preserves_instruction_count_and_never_collapses(
        subwarp_shift in 0u32..6,
        loads in 1usize..4,
    ) {
        let cfg = MicroConfig {
            subwarp_size: 1 << subwarp_shift,
            iterations: 1,
            loads_per_iter: loads,
            body_pad: 4,
            n_warps: 2,
        };
        let wl = microbenchmark_with(cfg);
        let base = Simulator::new(SmConfig::turing_like(), SiConfig::disabled()).run(&wl);
        for si in [
            SiConfig::sos(SelectPolicy::AnyStalled),
            SiConfig::sos(SelectPolicy::AllStalled),
            SiConfig::best(),
            SiConfig::best().with_max_subwarps(2),
        ] {
            let s = Simulator::new(SmConfig::turing_like(), si).run(&wl);
            // SIMT semantics are schedule-independent: the same instructions
            // execute regardless of interleaving.
            prop_assert_eq!(s.instructions, base.instructions);
            // SI can only help or mildly hurt — never deadlock or blow up.
            prop_assert!(s.cycles <= base.cycles * 2);
            prop_assert!(s.cycles * 64 >= base.cycles, "implausible speedup");
        }
    }

    #[test]
    fn predicated_branch_kernels_terminate_under_all_policies(
        threshold in 0i64..33,
        n_warps in 1usize..3,
    ) {
        // A data-dependent two-way divergence at an arbitrary lane split.
        let mut b = ProgramBuilder::new();
        let else_ = b.label("else");
        let sync = b.label("sync");
        b.isetp(subwarp_interleaving::isa::Pred(0), Reg(0), Operand::imm(threshold), CmpOp::Lt);
        b.bssy(subwarp_interleaving::isa::Barrier(0), sync);
        b.bra(else_).pred(subwarp_interleaving::isa::Pred(0), false);
        b.ldg(Reg(2), Reg(1), 0).wr_sb(Scoreboard(0));
        b.fadd(Reg(3), Reg(2), Operand::fimm(1.0)).req_sb(Scoreboard(0));
        b.bra(sync);
        b.place(else_);
        b.ldg(Reg(2), Reg(1), 0x40_000).wr_sb(Scoreboard(1));
        b.fadd(Reg(3), Reg(2), Operand::fimm(2.0)).req_sb(Scoreboard(1));
        b.bra(sync);
        b.place(sync);
        b.bsync(subwarp_interleaving::isa::Barrier(0));
        b.exit();
        let wl = Workload::new("prop-kernel", b.build().expect("valid"), n_warps)
            .with_init(Reg(0), InitValue::LaneId)
            .with_init(Reg(1), InitValue::GlobalTid);
        for si in [SiConfig::disabled(), SiConfig::best(), SiConfig::sos(SelectPolicy::AllStalled)] {
            let s = Simulator::new(SmConfig::turing_like(), si).run(&wl);
            prop_assert!(s.cycles > 0);
            prop_assert_eq!(s.instructions % n_warps as u64, 0);
        }
    }
}
