//! Property-style tests over the substrates and the simulator's global
//! invariants. Each test draws many random cases from a seeded
//! `subwarp_prng::SmallRng` stream, so the suite is deterministic and
//! fully offline (no external property-testing framework); a failing case
//! prints the iteration index so it can be replayed.

use subwarp_interleaving::core::{
    InitValue, SelectPolicy, SiConfig, Simulator, SmConfig, Workload,
};
use subwarp_interleaving::isa::{CmpOp, Operand, ProgramBuilder, Reg, SbMask, Scoreboard};
use subwarp_interleaving::mem::{AccessKind, Cache, CacheConfig, ServiceUnit};
use subwarp_interleaving::rt::{Bvh, Ray, Scene, Vec3};
use subwarp_interleaving::workloads::{microbenchmark_with, MicroConfig};
use subwarp_prng::SmallRng;

// ---------------------------------------------------------------- caches

/// A trivially correct fully-explicit LRU reference model.
struct RefCache {
    line: u64,
    sets: usize,
    ways: usize,
    // Per set: lines in LRU order (front = most recent).
    state: Vec<Vec<u64>>,
}

impl RefCache {
    fn new(cfg: CacheConfig) -> RefCache {
        RefCache {
            line: cfg.line_bytes,
            sets: cfg.sets(),
            ways: cfg.ways,
            state: vec![Vec::new(); cfg.sets()],
        }
    }

    fn access(&mut self, addr: u64) -> AccessKind {
        let tag = addr / self.line;
        let set = (tag as usize) % self.sets;
        let lines = &mut self.state[set];
        if let Some(pos) = lines.iter().position(|&t| t == tag) {
            let t = lines.remove(pos);
            lines.insert(0, t);
            AccessKind::Hit
        } else {
            lines.insert(0, tag);
            lines.truncate(self.ways);
            AccessKind::Miss
        }
    }
}

#[test]
fn cache_matches_lru_reference() {
    let mut rng = SmallRng::seed_from_u64(0xCAC4E);
    for case in 0..64 {
        let ways = rng.gen_range(1..4usize);
        let n = rng.gen_range(1..400usize);
        let cfg = CacheConfig {
            size_bytes: (ways as u64) * 4 * 64,
            line_bytes: 64,
            ways,
        };
        let mut dut = Cache::new(cfg);
        let mut reference = RefCache::new(cfg);
        for _ in 0..n {
            let a = rng.gen_range(0u64..(1 << 14));
            assert_eq!(
                dut.access(a),
                reference.access(a),
                "case {case}, address {a:#x}"
            );
        }
    }
}

#[test]
fn cache_stats_add_up() {
    let mut rng = SmallRng::seed_from_u64(0x57A75);
    for case in 0..64 {
        let n = rng.gen_range(1..300usize);
        let mut c = Cache::new(CacheConfig::l1_data());
        for _ in 0..n {
            c.access(rng.gen_range(0u64..(1 << 16)));
        }
        let s = c.stats();
        assert_eq!(s.accesses(), n as u64, "case {case}");
        assert!((0.0..=1.0).contains(&s.miss_ratio()), "case {case}");
    }
}

// ---------------------------------------------------------- service unit

#[test]
fn service_unit_completes_everything_in_order() {
    let mut rng = SmallRng::seed_from_u64(0x5EFF1CE);
    for case in 0..64 {
        let reqs: Vec<(u64, u32)> = (0..rng.gen_range(1..200usize))
            .map(|_| (rng.gen_range(0u64..1000), rng.gen_range(0u32..100)))
            .collect();
        let mut u = ServiceUnit::new();
        for &(ready, payload) in &reqs {
            u.push(ready, payload);
        }
        let done = u.pop_ready(2000);
        assert_eq!(done.len(), reqs.len(), "case {case}");
        assert!(u.is_empty(), "case {case}");
        // Completion cycles are monotone.
        for w in done.windows(2) {
            assert!(w[0].at_cycle <= w[1].at_cycle, "case {case}");
        }
        // Nothing completes before its ready cycle.
        let mut u = ServiceUnit::new();
        for &(ready, payload) in &reqs {
            u.push(ready, payload);
        }
        let min_ready = reqs.iter().map(|&(r, _)| r).min().unwrap();
        if min_ready > 0 {
            assert!(u.pop_ready(min_ready - 1).is_empty(), "case {case}");
        }
    }
}

// ------------------------------------------------------------------ BVH

#[test]
fn bvh_traversal_matches_brute_force() {
    let mut rng = SmallRng::seed_from_u64(0xB5);
    for case in 0..48 {
        let n_tris = rng.gen_range(1..120usize);
        let seed = rng.gen_range(0u64..1000);
        let (ox, oy) = (rng.gen_range(-3.0..3.0f32), rng.gen_range(-3.0..3.0f32));
        let (dx, dy) = (rng.gen_range(-1.0..1.0f32), rng.gen_range(-1.0..1.0f32));
        let scene = Scene::random_soup(n_tris, seed);
        let bvh = Bvh::build(&scene);
        let ray = Ray::new(Vec3::new(ox, oy, -10.0), Vec3::new(dx, dy, 1.0));
        let got = bvh.traverse(&ray).hit;
        let mut want: Option<(u32, f32)> = None;
        for (i, t) in scene.triangles().iter().enumerate() {
            if let Some(d) = t.intersect(&ray) {
                if want.is_none_or(|(_, bd)| d < bd) {
                    want = Some((i as u32, d));
                }
            }
        }
        match (got, want) {
            (None, None) => {}
            (Some(h), Some((i, d))) => {
                assert_eq!(h.triangle, i, "case {case}");
                assert!((h.t - d).abs() < 1e-4, "case {case}");
            }
            (g, w) => panic!("case {case}: bvh {g:?} vs brute {w:?}"),
        }
    }
}

// ------------------------------------------------------------------ ISA

#[test]
fn sbmask_set_semantics() {
    let mut rng = SmallRng::seed_from_u64(0x5B);
    for case in 0..64 {
        let ids: Vec<u8> = (0..rng.gen_range(0..16usize))
            .map(|_| rng.gen_range(0u8..8))
            .collect();
        let mask: SbMask = ids.iter().map(|&i| Scoreboard(i)).collect();
        for i in 0..8u8 {
            assert_eq!(
                mask.contains(Scoreboard(i)),
                ids.contains(&i),
                "case {case}"
            );
        }
        assert_eq!(mask.is_empty(), ids.is_empty(), "case {case}");
    }
}

#[test]
fn builder_rejects_dangling_scoreboards() {
    let mut rng = SmallRng::seed_from_u64(0xDA);
    for _ in 0..32 {
        let sb = rng.gen_range(8u8..255);
        let mut b = ProgramBuilder::new();
        b.ldg(Reg(0), Reg(1), 0).wr_sb(Scoreboard(sb));
        b.exit();
        assert!(
            b.build().is_err(),
            "sb{sb} is out of range and must be rejected"
        );
    }
}

// -------------------------------------------------------- simulator laws

#[test]
fn simulator_is_deterministic_on_random_micro_configs() {
    let mut rng = SmallRng::seed_from_u64(0xDE7);
    for case in 0..12 {
        let cfg = MicroConfig {
            subwarp_size: 1 << rng.gen_range(0u32..6),
            iterations: rng.gen_range(1u32..3),
            loads_per_iter: rng.gen_range(1..4usize),
            body_pad: rng.gen_range(0..16usize),
            n_warps: 2,
        };
        let wl = microbenchmark_with(cfg);
        let sim = Simulator::new(SmConfig::turing_like(), SiConfig::best());
        assert_eq!(sim.run(&wl).unwrap(), sim.run(&wl).unwrap(), "case {case}");
    }
}

#[test]
fn si_preserves_instruction_count_and_never_collapses() {
    let mut rng = SmallRng::seed_from_u64(0x1C);
    for case in 0..10 {
        let cfg = MicroConfig {
            subwarp_size: 1 << rng.gen_range(0u32..6),
            iterations: 1,
            loads_per_iter: rng.gen_range(1..4usize),
            body_pad: 4,
            n_warps: 2,
        };
        let wl = microbenchmark_with(cfg);
        let base = Simulator::new(SmConfig::turing_like(), SiConfig::disabled())
            .run(&wl)
            .unwrap();
        for si in [
            SiConfig::sos(SelectPolicy::AnyStalled),
            SiConfig::sos(SelectPolicy::AllStalled),
            SiConfig::best(),
            SiConfig::best().with_max_subwarps(2),
        ] {
            let s = Simulator::new(SmConfig::turing_like(), si)
                .run(&wl)
                .unwrap();
            // SIMT semantics are schedule-independent: the same instructions
            // execute regardless of interleaving.
            assert_eq!(s.instructions, base.instructions, "case {case}");
            // SI can only help or mildly hurt — never deadlock or blow up.
            assert!(s.cycles <= base.cycles * 2, "case {case}");
            assert!(
                s.cycles * 64 >= base.cycles,
                "case {case}: implausible speedup"
            );
        }
    }
}

#[test]
fn predicated_branch_kernels_terminate_under_all_policies() {
    let mut rng = SmallRng::seed_from_u64(0xB7A);
    for case in 0..10 {
        let threshold = rng.gen_range(0i64..33);
        let n_warps = rng.gen_range(1..3usize);
        // A data-dependent two-way divergence at an arbitrary lane split.
        let mut b = ProgramBuilder::new();
        let else_ = b.label("else");
        let sync = b.label("sync");
        b.isetp(
            subwarp_interleaving::isa::Pred(0),
            Reg(0),
            Operand::imm(threshold),
            CmpOp::Lt,
        );
        b.bssy(subwarp_interleaving::isa::Barrier(0), sync);
        b.bra(else_).pred(subwarp_interleaving::isa::Pred(0), false);
        b.ldg(Reg(2), Reg(1), 0).wr_sb(Scoreboard(0));
        b.fadd(Reg(3), Reg(2), Operand::fimm(1.0))
            .req_sb(Scoreboard(0));
        b.bra(sync);
        b.place(else_);
        b.ldg(Reg(2), Reg(1), 0x40_000).wr_sb(Scoreboard(1));
        b.fadd(Reg(3), Reg(2), Operand::fimm(2.0))
            .req_sb(Scoreboard(1));
        b.bra(sync);
        b.place(sync);
        b.bsync(subwarp_interleaving::isa::Barrier(0));
        b.exit();
        let wl = Workload::new("prop-kernel", b.build().expect("valid"), n_warps)
            .with_init(Reg(0), InitValue::LaneId)
            .with_init(Reg(1), InitValue::GlobalTid);
        for si in [
            SiConfig::disabled(),
            SiConfig::best(),
            SiConfig::sos(SelectPolicy::AllStalled),
        ] {
            let s = Simulator::new(SmConfig::turing_like(), si)
                .run(&wl)
                .unwrap();
            assert!(s.cycles > 0, "case {case}");
            assert_eq!(s.instructions % n_warps as u64, 0, "case {case}");
        }
    }
}

// ------------------------------------------------- cycle attribution

/// Tentpole invariant, checked from the outside: every simulated cycle is
/// attributed to exactly one `CycleCause`, so the per-cause counts must sum
/// to the total simulated SM-cycles (`== cycles` on one SM, summed per-SM
/// clocks on a chip) for *every* suite workload under the baseline and the
/// fuzzer SI configurations (every `SelectPolicy` × `DivergeOrder` combo in
/// switch-on-stall and yield flavours, a capacity-limited TST, and the
/// DWS-like scheme). The simulator also self-checks this conservation at the
/// end of every run — this test pins it on the returned stats.
#[test]
fn cycle_attribution_conserves_over_suite_and_fuzzer_grid() {
    use subwarp_interleaving::core::CycleCause;

    let grid = subwarp_fuzz::config_grid();
    assert!(grid.len() >= 27, "fuzzer grid shrank to {}", grid.len());
    let mut sweep = subwarp_bench::Sweep::over_suite();
    for (label, sm, si) in &grid {
        sweep = sweep.config(label.clone(), sm.clone(), *si);
    }
    let results = sweep.run().expect("suite x fuzzer-grid simulates cleanly");
    let suite = subwarp_bench::Sweep::over_suite();
    let names: Vec<String> = suite.workload_names().map(str::to_owned).collect();
    for (w, row) in results.iter().enumerate() {
        for (c, stats) in row.iter().enumerate() {
            let ctx = format!("{} / {}", names[w], grid[c].0);
            let total: u64 = CycleCause::ALL.iter().map(|&x| stats.cause(x)).sum();
            assert_eq!(total, stats.causes_total(), "{ctx}");
            // Conservation is per SM clock: on a multi-SM chip the causes
            // sum over every SM's cycles, while `cycles` is the slowest
            // SM's clock. Single-SM runs have sm_cycles_total == cycles.
            assert_eq!(total, stats.sm_cycles_total, "{ctx}: attribution leak");
            for (i, per) in stats.per_sm.iter().enumerate() {
                assert_eq!(
                    per.causes_total(),
                    per.cycles,
                    "{ctx}: SM {i} attribution leak"
                );
            }
            // Productive work exists and is correctly tagged on every trace.
            assert!(stats.cause(CycleCause::Issued) > 0, "{ctx}");
            assert!(
                stats.cause(CycleCause::Issued) <= stats.sm_cycles_total,
                "{ctx}"
            );
        }
    }
}
