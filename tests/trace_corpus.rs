//! Frozen replay corpus: every `.swt` file under `tests/corpus/` must keep
//! decoding, re-encoding byte-identically, and replaying to the digest
//! frozen in its sibling `.expect` file. A drift here means the trace
//! format or the simulator changed observable behaviour — either fix the
//! regression or consciously re-freeze with
//! `trace validate tests/corpus/*.swt --write-expect` and bump
//! `FORMAT_VERSION` if the wire layout changed.

use std::path::{Path, PathBuf};
use subwarp_trace::{decode_workload, encode_workload, import_text, workload_digest, ImportMode};

fn corpus_dir() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/corpus")
}

fn corpus_files() -> Vec<PathBuf> {
    let mut files: Vec<PathBuf> = std::fs::read_dir(corpus_dir())
        .expect("tests/corpus must exist")
        .map(|e| e.expect("readable corpus entry").path())
        .filter(|p| p.extension().is_some_and(|e| e == "swt"))
        .collect();
    files.sort();
    files
}

#[test]
fn corpus_is_nonempty_and_has_expectations() {
    let files = corpus_files();
    assert!(
        files.len() >= 5,
        "frozen corpus shrank to {} file(s)",
        files.len()
    );
    for f in files {
        assert!(
            f.with_extension("expect").exists(),
            "{} has no frozen .expect digest",
            f.display()
        );
    }
}

#[test]
fn corpus_replays_byte_identically() {
    for f in corpus_files() {
        let bytes = std::fs::read(&f).expect("read corpus trace");
        let wl = decode_workload(&bytes)
            .unwrap_or_else(|e| panic!("{} no longer decodes: {e}", f.display()));
        assert_eq!(
            encode_workload(&wl),
            bytes,
            "{} does not re-encode byte-identically",
            f.display()
        );
        let digest = workload_digest(&bytes, &wl)
            .unwrap_or_else(|e| panic!("{} no longer replays: {e}", f.display()));
        let want = std::fs::read_to_string(f.with_extension("expect"))
            .unwrap_or_else(|e| panic!("{} expect file: {e}", f.display()));
        assert_eq!(
            digest,
            want,
            "{} drifted from its frozen digest",
            f.display()
        );
    }
}

#[test]
fn import_sample_parses_strict_and_replays() {
    let path = corpus_dir().join("import/demo.txt");
    let text = std::fs::read_to_string(&path).expect("read import sample");
    let imported = import_text(&text, ImportMode::Strict).expect("strict import");
    assert!(imported.report.is_exact(), "demo sample must be in-subset");
    assert_eq!(imported.report.warps, 2);
    assert!(imported.report.address_tables > 0);
    // The imported kernel must actually run (and deterministically so).
    let bytes = encode_workload(&imported.workload);
    let d1 = workload_digest(&bytes, &imported.workload).expect("replay");
    let d2 = workload_digest(&bytes, &imported.workload).expect("replay");
    assert_eq!(d1, d2);
}
