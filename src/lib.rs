#![warn(missing_docs)]

//! # Subwarp Interleaving — facade crate
//!
//! This crate re-exports the full reproduction of *GPU Subwarp Interleaving*
//! (HPCA 2022) so downstream users can depend on a single package:
//!
//! - [`isa`] — a SASS-like instruction set with convergence barriers and
//!   counted-scoreboard annotations.
//! - [`mem`] — cache and latency-stub memory models.
//! - [`rt`] — BVH construction/traversal and the RT-core unit model.
//! - [`core`] — the cycle-level Turing-like SM simulator and the Subwarp
//!   Interleaving scheduler (the paper's contribution).
//! - [`workloads`] — the CUDA-style microbenchmark, toy kernels, and the
//!   raytracing megakernel trace suite.
//! - [`stats`] — metric aggregation and report formatting.
//!
//! ## Quickstart
//!
//! ```
//! use subwarp_interleaving::core::{Simulator, SmConfig, SiConfig};
//! use subwarp_interleaving::workloads::microbenchmark;
//!
//! // Build the paper's Figure-11 microbenchmark with 2 subwarps per warp.
//! let wl = microbenchmark(16, 4);
//!
//! // Run it on a baseline SM and on an SI-enabled SM, then compare cycles.
//! // `run` returns `Result<RunStats, SimError>`; failures carry a snapshot
//! // of the machine state at the failing cycle.
//! let base = Simulator::new(SmConfig::turing_like(), SiConfig::disabled()).run(&wl)?;
//! let si = Simulator::new(SmConfig::turing_like(), SiConfig::switch_on_stall()).run(&wl)?;
//! assert!(si.cycles <= base.cycles);
//! # Ok::<(), subwarp_interleaving::core::SimError>(())
//! ```

pub use subwarp_core as core;
pub use subwarp_isa as isa;
pub use subwarp_mem as mem;
pub use subwarp_rt as rt;
pub use subwarp_stats as stats;
pub use subwarp_workloads as workloads;
