//! Explore the Subwarp Interleaving design space on one application trace:
//! trigger policies (N > 0, N ≥ 0.5, N = 1), subwarp-yield, thread-status-
//! table capacity, and switch latency.
//!
//! ```sh
//! cargo run --release --example policy_explorer [trace]
//! ```

use subwarp_interleaving::core::{SelectPolicy, SiConfig, Simulator, SmConfig};
use subwarp_interleaving::stats::Table;
use subwarp_interleaving::workloads::trace_by_name;

fn main() {
    let name = std::env::args().nth(1).unwrap_or_else(|| "BFV1".to_owned());
    let trace = trace_by_name(&name).unwrap_or_else(|| {
        eprintln!("unknown trace `{name}` (try AV1, BFV1, Coll1, ...)");
        std::process::exit(2);
    });
    println!("trace {}: {}\n", trace.name, trace.description);
    let wl = trace.build();
    let base = Simulator::new(SmConfig::turing_like(), SiConfig::disabled())
        .run(&wl)
        .unwrap();

    let mut t = Table::new(vec![
        "configuration".into(),
        "speedup".into(),
        "demotions".into(),
        "switches".into(),
        "yields".into(),
    ]);
    let mut run = |label: String, si: SiConfig| {
        let s = Simulator::new(SmConfig::turing_like(), si)
            .run(&wl)
            .unwrap();
        t.row(vec![
            label,
            format!("{:+.1}%", (s.speedup_vs(&base) - 1.0) * 100.0),
            s.subwarp_stalls.to_string(),
            s.subwarp_switches.to_string(),
            s.subwarp_yields.to_string(),
        ]);
    };

    for p in [
        SelectPolicy::AllStalled,
        SelectPolicy::HalfStalled,
        SelectPolicy::AnyStalled,
    ] {
        run(format!("SOS,{}", p.label()), SiConfig::sos(p));
        run(format!("Both,{}", p.label()), SiConfig::both(p));
    }
    for n in [2usize, 4, 6] {
        run(
            format!("Both,N>=0.5,TST={n}"),
            SiConfig::best().with_max_subwarps(n),
        );
    }
    let mut slow_switch = SiConfig::best();
    slow_switch.switch_latency = 20;
    run("Both,N>=0.5,switch=20cy".into(), slow_switch);

    println!("{t}");
    println!(
        "baseline: {} cycles, {:.1}% exposed load-to-use stalls",
        base.cycles,
        base.exposed_ratio() * 100.0
    );
}
