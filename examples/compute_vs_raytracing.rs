//! The paper's central scoping claim, demonstrated side by side: Subwarp
//! Interleaving transforms raytracing megakernels but is inert on ordinary
//! compute kernels (§VI: of 400+ compute kernels profiled, "none benefited
//! beyond the margin of noise").
//!
//! ```sh
//! cargo run --release --example compute_vs_raytracing
//! ```

use subwarp_interleaving::core::{SiConfig, Simulator, SmConfig};
use subwarp_interleaving::stats::Table;
use subwarp_interleaving::workloads::{compute_suite, suite};

fn main() {
    let base_sim = Simulator::new(SmConfig::turing_like(), SiConfig::disabled());
    let si_sim = Simulator::new(SmConfig::turing_like(), SiConfig::best());

    let mut t = Table::new(vec![
        "workload".into(),
        "kind".into(),
        "SI gain".into(),
        "divergent stall share".into(),
    ]);
    let mut run = |name: String, kind: &str, wl: &subwarp_interleaving::core::Workload| {
        let b = base_sim.run(wl).unwrap();
        let s = si_sim.run(wl).unwrap();
        t.row(vec![
            name,
            kind.into(),
            format!("{:+.1}%", (s.speedup_vs(&b) - 1.0) * 100.0),
            format!("{:.1}%", b.exposed_divergent_ratio() * 100.0),
        ]);
    };

    for trace in suite().iter().take(4) {
        run(trace.name.to_owned(), "raytracing", &trace.build());
    }
    for wl in compute_suite() {
        let name = wl.name.clone();
        run(name, "compute", &wl);
    }
    println!("{t}");
    println!("Raytracing's divergent load-to-use stalls are SI's entire value");
    println!("proposition; compute kernels either do not diverge, or diverge");
    println!("without stalling — the paper's narrow-applicability conclusion.");
}
