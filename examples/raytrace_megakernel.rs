//! Build a raytracing megakernel over a custom procedural scene, trace its
//! rays through a real BVH, and measure how Subwarp Interleaving exploits
//! the resulting divergence — the paper's Figure 1/5 workflow end to end.
//!
//! ```sh
//! cargo run --release --example raytrace_megakernel
//! ```

use subwarp_interleaving::core::{SiConfig, Simulator, SmConfig};
use subwarp_interleaving::rt::{Bvh, Scene};
use subwarp_interleaving::workloads::{MegakernelConfig, SceneKind, ShaderProfile};

fn main() {
    // A high-entropy scene: random triangles with 8 materials. Neighbouring
    // camera rays strike different materials, so warps splinter at the
    // shader switch.
    let scene_kind = SceneKind::Soup {
        triangles: 4000,
        materials: 8,
    };

    // Inspect the scene/BVH the generator will trace through.
    let scene = Scene::soup_with_materials(4000, 8, 7);
    let bvh = Bvh::build(&scene);
    println!(
        "scene: {} triangles, {} materials, BVH of {} nodes",
        scene.triangles().len(),
        scene.material_count(),
        bvh.node_count()
    );

    // Eight hit shaders plus a miss shader: half the shaders stream cold
    // (always-miss) texture/global data — their subwarps stall; the other
    // half read hot L1D-resident data — their subwarps barely stall. The
    // mix is what makes subwarp *order* matter (paper §VI, limiter #3).
    let profiles: Vec<ShaderProfile> = (0..8)
        .map(|s| ShaderProfile {
            tex_ops: 1 + s % 2,
            ldg_ops: 1,
            hot_loads: if s % 2 == 0 { 0 } else { 3 },
            math_ops: 8,
            trips: 1,
            code_pad: 24,
        })
        .chain([ShaderProfile::miss()])
        .collect();

    let wl = MegakernelConfig {
        name: "custom-megakernel".into(),
        scene: scene_kind,
        bounces: 2,
        n_warps: 12,
        seed: 7,
        profiles,
        common_ldg: 1,
        common_math: 8,
    }
    .build();
    println!(
        "megakernel: {} instructions, {} warps, {} pre-traced rays\n",
        wl.program.len(),
        wl.n_warps,
        wl.rt_trace.len()
    );

    let base = Simulator::new(SmConfig::turing_like(), SiConfig::disabled())
        .run(&wl)
        .unwrap();
    let si = Simulator::new(SmConfig::turing_like(), SiConfig::best())
        .run(&wl)
        .unwrap();

    println!("{:<26} {:>12} {:>12}", "", "baseline", "SI (Both,N>=0.5)");
    let row = |k: &str, a: u64, b: u64| println!("{k:<26} {a:>12} {b:>12}");
    row("cycles", base.cycles, si.cycles);
    row("instructions", base.instructions, si.instructions);
    row(
        "exposed load-to-use",
        base.exposed_load_stalls,
        si.exposed_load_stalls,
    );
    row(
        "  ...in divergent code",
        base.exposed_load_stalls_divergent,
        si.exposed_load_stalls_divergent,
    );
    row(
        "exposed RT-traversal",
        base.exposed_traversal_stalls,
        si.exposed_traversal_stalls,
    );
    row("divergences", base.divergences, si.divergences);
    row(
        "subwarp-stall demotions",
        base.subwarp_stalls,
        si.subwarp_stalls,
    );
    row(
        "subwarp switches",
        base.subwarp_switches,
        si.subwarp_switches,
    );
    println!("\nspeedup: {:.1}%", (si.speedup_vs(&base) - 1.0) * 100.0);
}
