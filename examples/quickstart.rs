//! Quickstart: author the paper's Figure 9 kernel by hand, run it on the
//! baseline SM and on a Subwarp-Interleaving SM, and watch the two divergent
//! load-to-use stalls overlap.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use subwarp_interleaving::core::{
    EventKind, InitValue, SelectPolicy, SiConfig, Simulator, SmConfig, Workload,
};
use subwarp_interleaving::isa::{Barrier, CmpOp, Operand, Pred, ProgramBuilder, Reg, Scoreboard};

fn main() {
    // --- 1. Author a divergent kernel (the paper's Figure 9) -------------
    // Lane 0 takes the TEX path, lane 1 the TLD path; each path suffers a
    // load-to-use stall on a compulsory L1D miss.
    let mut b = ProgramBuilder::new();
    let else_ = b.label("Else");
    let sync = b.label("syncPoint");
    b.isetp(Pred(0), Reg(0), Operand::imm(1), CmpOp::Lt); // P0 = (lane == 0)
    b.bssy(Barrier(0), sync);
    b.bra(else_).pred(Pred(0), false);
    b.tld(Reg(2), Reg(4)).wr_sb(Scoreboard(5)); //   TLD R2 … &wr=sb5
    b.fmul(Reg(10), Reg(5), Operand::cbank(1, 16));
    b.fmul(Reg(2), Reg(2), Operand::reg(10))
        .req_sb(Scoreboard(5)); // stall
    b.bra(sync);
    b.place(else_);
    b.tex(Reg(1), Reg(6)).wr_sb(Scoreboard(2)); //   TEX R1 … &wr=sb2
    b.fadd(Reg(1), Reg(1), Operand::reg(3))
        .req_sb(Scoreboard(2)); // stall
    b.bra(sync);
    b.place(sync);
    b.bsync(Barrier(0));
    b.exit();
    let program = b.build().expect("figure 9 is a valid program");
    println!("megakernel fragment:\n{program}");

    // --- 2. Wrap it in a workload ----------------------------------------
    let wl = Workload::new("quickstart", program, 1)
        .with_threads_per_warp(2)
        .with_init(Reg(0), InitValue::LaneId)
        .with_init(Reg(4), InitValue::Const(0x10_000))
        .with_init(Reg(6), InitValue::Const(0x20_000));

    // --- 3. Run baseline vs Subwarp Interleaving --------------------------
    let base = Simulator::new(SmConfig::turing_like(), SiConfig::disabled())
        .run(&wl)
        .unwrap();
    let (si, events) = Simulator::new(
        SmConfig::turing_like(),
        SiConfig::sos(SelectPolicy::AnyStalled),
    )
    .run_recorded(&wl)
    .unwrap();

    println!(
        "baseline            : {:>6} cycles ({} exposed stall cycles)",
        base.cycles, base.exposed_load_stalls
    );
    println!(
        "subwarp interleaving: {:>6} cycles ({} exposed stall cycles)",
        si.cycles, si.exposed_load_stalls
    );
    println!(
        "speedup             : {:.2}x  (the two ~600-cycle misses overlap)",
        si.speedup_vs(&base)
    );

    // --- 4. Replay the thread-status transitions (paper Figure 10a) ------
    println!("\nsubwarp scheduler events:");
    for e in events.events() {
        let what = match e.kind {
            EventKind::Diverge => "warp splinters into subwarps",
            EventKind::Stall => "subwarp-stall: demoted on load-to-use stall",
            EventKind::Wakeup => "subwarp-wakeup: scoreboards cleared",
            EventKind::Select => "subwarp-select: READY subwarp activated",
            EventKind::Yield => "subwarp-yield",
            EventKind::Block => "blocked at BSYNC",
            EventKind::Reconverge => "barrier release: reconverged",
            EventKind::Exit => "threads exited",
        };
        println!(
            "  cycle {:>5}  mask {:#04b}  pc {:>2}  {what}",
            e.cycle, e.mask, e.pc
        );
    }
}
