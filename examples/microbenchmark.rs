//! The paper's Figure 11 CUDA microbenchmark: sweep the divergence factor
//! from 2 to 32 and reproduce the Table III scaling curve, including the
//! instruction-fetch taper at 32-way.
//!
//! ```sh
//! cargo run --release --example microbenchmark
//! ```

use subwarp_interleaving::core::{SelectPolicy, SiConfig, Simulator, SmConfig};
use subwarp_interleaving::workloads::microbenchmark;

fn main() {
    let base_sim = Simulator::new(SmConfig::turing_like(), SiConfig::disabled());
    let si_sim = Simulator::new(
        SmConfig::turing_like(),
        SiConfig::sos(SelectPolicy::AnyStalled),
    );

    println!(
        "{:>12} {:>11} {:>10} {:>14} {:>14}",
        "SUBWARP_SIZE", "divergence", "speedup", "SI l2u-stall%", "SI fetch-stall%"
    );
    for subwarp_size in [16usize, 8, 4, 2, 1] {
        let wl = microbenchmark(subwarp_size, 16);
        let base = base_sim.run(&wl).unwrap();
        let si = si_sim.run(&wl).unwrap();
        println!(
            "{:>12} {:>11} {:>9.2}x {:>13.1}% {:>14.1}%",
            subwarp_size,
            32 / subwarp_size,
            si.speedup_vs(&base),
            si.exposed_ratio() * 100.0,
            si.exposed_fetch_stalls as f64 / si.cycles as f64 * 100.0,
        );
    }
    println!("\npaper Table III: 1.98 / 3.95 / 7.84 / 15.22 / 12.66");
    println!("note how load-to-use stalls fall toward zero while fetch stalls rise");
    println!("sharply at 32-way divergence (paper §V-A).");
}
